"""Hypothesis-driven protocol properties.

Random structured operation sequences (not just uniform traces) hunting
for corner cases: mixed I/D access to the same region, ownership
ping-pong, and cross-config result agreement (the observed values must
not depend on which hierarchy serves them).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from tests.helpers import TraceDriver, small_config
from repro.common.params import base_2l, d2m_fs, d2m_ns_r
from repro.common.types import AccessKind
from repro.core.hierarchy import build_hierarchy
from repro.core.invariants import check_invariants

_KINDS = (AccessKind.IFETCH, AccessKind.LOAD, AccessKind.STORE)

# Operations concentrated on few regions to maximize interaction.
op_strategy = st.tuples(
    st.integers(0, 3),              # core
    st.sampled_from(_KINDS),        # kind
    st.integers(0, 3),              # region choice (tiny pool)
    st.integers(0, 15),             # line within region
)

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def _drive(driver: TraceDriver, ops) -> list:
    observed = []
    for core, kind, region, line in ops:
        vaddr = 0x10_0000 + region * 1024 + line * 64
        if kind is AccessKind.IFETCH:
            vaddr += 0x10_0000  # instruction pool kept disjoint from data
            kind_used = AccessKind.IFETCH
        else:
            kind_used = kind
        result = driver.access(core, kind_used, vaddr)
        observed.append(result.version)
    return observed


@SETTINGS
@given(st.lists(op_strategy, min_size=1, max_size=150))
def test_d2m_invariants_hold_under_contention(ops):
    driver = TraceDriver(build_hierarchy(small_config(d2m_fs(4))))
    _drive(driver, ops)  # TraceDriver's oracle checks every load
    check_invariants(driver.hierarchy.protocol)


@SETTINGS
@given(st.lists(op_strategy, min_size=1, max_size=120))
def test_ns_r_invariants_hold_under_contention(ops):
    driver = TraceDriver(build_hierarchy(small_config(d2m_ns_r(4))))
    _drive(driver, ops)
    check_invariants(driver.hierarchy.protocol)


@SETTINGS
@given(st.lists(op_strategy, min_size=1, max_size=100))
def test_observed_values_agree_across_hierarchies(ops):
    """Base-2L and D2M must observe identical version sequences."""
    base = TraceDriver(build_hierarchy(small_config(base_2l(4))))
    d2m = TraceDriver(build_hierarchy(small_config(d2m_fs(4))))
    assert _drive(base, ops) == _drive(d2m, ops)
