"""Unit tests for the metadata entry types."""

import pytest

from repro.core.li import LI
from repro.core.regions import (
    ActiveSite,
    MD1Entry,
    MD2Entry,
    MD3Entry,
    RegionClass,
    fresh_li_array,
)


class TestRegionClass:
    def test_table2_mapping(self):
        assert RegionClass.of(0) is RegionClass.UNTRACKED
        assert RegionClass.of(1) is RegionClass.PRIVATE
        assert RegionClass.of(2) is RegionClass.SHARED
        assert RegionClass.of(8) is RegionClass.SHARED


class TestEntries:
    def test_md1_requires_li(self):
        with pytest.raises(ValueError):
            MD1Entry(vregion=0, pregion=0, private=True, li=[])

    def test_md2_tracking_pointer(self):
        entry = MD2Entry(pregion=1, private=False, li=fresh_li_array(16))
        assert not entry.md1_active
        entry.active_in = ActiveSite.MD1D
        entry.tp_vregion = 42
        assert entry.md1_active

    def test_md3_classification(self):
        entry = MD3Entry(pregion=1, li=[LI.mem()] * 16)
        assert entry.classification is RegionClass.UNTRACKED
        entry.pb.add(3)
        assert entry.is_private
        assert entry.sole_owner() == 3
        entry.pb.add(4)
        assert entry.classification is RegionClass.SHARED
        with pytest.raises(ValueError):
            entry.sole_owner()

    def test_fresh_li_array(self):
        arr = fresh_li_array(16)
        assert len(arr) == 16
        assert all(not li.is_valid for li in arr)
