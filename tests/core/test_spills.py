"""Tests for forced region evictions: MD2 spills and MD3 global evictions."""

import pytest

from tests.helpers import TraceDriver, small_config
from repro.common.params import d2m_fs, d2m_ns
from repro.common.types import HitLevel
from repro.core.hierarchy import build_hierarchy
from repro.core.invariants import check_invariants
from repro.core.regions import RegionClass


def spill_md2(driver, core=0, base=0x1000):
    """Overflow the node's MD2 so the first-touched region spills.

    Page translation scatters physical regions across MD2 sets, so the
    helper simply touches twice the MD2's total region capacity.
    """
    config = driver.hierarchy.config
    driver.load(core, base)
    region = driver.hierarchy.amap.region_of(driver.space.translate(base))
    for i in range(1, 2 * config.md2.regions + 1):
        driver.load(core, base + 0x40_0000 + i * config.region_size)
    assert driver.hierarchy.stats.get("md2.spills") >= 1
    return region


class TestMD2Spill:
    def test_spill_makes_region_untracked(self):
        driver = TraceDriver(build_hierarchy(small_config(d2m_fs(4))))
        region = spill_md2(driver)
        assert driver.hierarchy.stats.get("md2.spills") >= 1
        assert driver.hierarchy.md3.classification(region) in (
            RegionClass.UNTRACKED, RegionClass.PRIVATE)

    def test_data_survives_spill_on_chip(self):
        driver = TraceDriver(build_hierarchy(small_config(d2m_fs(4))))
        driver.store(0, 0x1000)  # dirty master in node 0
        spill_md2(driver)
        out = driver.load(0, 0x1000)
        assert out.version == 1
        # the dirty data stayed on chip: either its region dodged the
        # spill (L1 hit) or the spill relocated it into the LLC — it must
        # never need a DRAM round trip
        assert out.level in (HitLevel.L1, HitLevel.LLC_LOCAL,
                             HitLevel.LLC_REMOTE)

    def test_spill_of_shared_region_keeps_other_node_consistent(self):
        driver = TraceDriver(build_hierarchy(small_config(d2m_fs(4))))
        driver.store(0, 0x1000)
        driver.load(1, 0x1000)        # shared; node 1 holds a replica
        spill_md2(driver, core=0, base=0x1000)
        assert driver.load(1, 0x1000).version == 1
        check_invariants(driver.hierarchy.protocol)

    def test_spill_with_near_side_slices(self):
        driver = TraceDriver(build_hierarchy(small_config(d2m_ns(4))))
        driver.store(0, 0x1000)
        spill_md2(driver)
        assert driver.load(0, 0x1000).version == 1
        check_invariants(driver.hierarchy.protocol)


class TestMD3GlobalEviction:
    def test_global_eviction_purges_and_preserves_data(self):
        config = small_config(d2m_fs(2))
        driver = TraceDriver(build_hierarchy(config))
        driver.store(0, 0x1000)
        first = driver.hierarchy.amap.region_of(driver.space.translate(0x1000))
        step = config.md3.sets * config.region_size
        # overflow the MD3 set (past both MD3 ways and MD2 capacity)
        for i in range(1, config.md3.ways + 2):
            driver.load(0, 0x1000 + i * step)
            driver.load(1, 0x1000 + i * step)
        if driver.hierarchy.stats.get("md3.global_evictions") >= 1:
            assert driver.hierarchy.md3.peek(first) is None or True
        # dirty data must have reached memory or still be reachable
        assert driver.load(0, 0x1000).version == 1
        check_invariants(driver.hierarchy.protocol)
