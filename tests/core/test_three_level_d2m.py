"""The generic three-level D2M machine (Figure 2)."""

import pytest

from tests.helpers import TraceDriver
from repro.common.params import d2m_3l, d2m_fs
from repro.common.types import HitLevel
from repro.core.hierarchy import build_hierarchy
from repro.core.invariants import check_invariants


@pytest.fixture
def three_level():
    return TraceDriver(build_hierarchy(d2m_3l(4)))


class TestThreeLevelD2M:
    def test_l1_victims_move_into_the_l2(self, three_level):
        cfg = three_level.hierarchy.config
        three_level.load(0, 0x0)
        span = cfg.l1d.sets * cfg.line_size
        for i in range(1, cfg.l1d.ways + 2):
            three_level.load(0, i * span)
        out = three_level.load(0, 0x0)
        assert out.level is HitLevel.L2

    def test_l2_hit_moves_the_line_back_up(self, three_level):
        self.test_l1_victims_move_into_the_l2(three_level)
        assert three_level.load(0, 0x0).level is HitLevel.L1

    def test_li_tracks_the_level_change(self, three_level):
        from repro.core.li import LIKind
        cfg = three_level.hierarchy.config
        three_level.load(0, 0x0)
        paddr = three_level.space.translate(0x0)
        region = three_level.hierarchy.amap.region_of(paddr)
        idx = three_level.hierarchy.amap.line_in_region(paddr)
        node = three_level.hierarchy.nodes[0]
        assert node.li_of(region, idx).kind is LIKind.L1
        span = cfg.l1d.sets * cfg.line_size
        for i in range(1, cfg.l1d.ways + 2):
            three_level.load(0, i * span)
        assert node.li_of(region, idx).kind is LIKind.L2

    def test_dirty_master_survives_two_levels_of_eviction(self, three_level):
        cfg = three_level.hierarchy.config
        three_level.store(0, 0x0)
        span = cfg.l1d.sets * cfg.line_size
        # push through L1 into L2 and out of L2 into the LLC
        for i in range(1, cfg.l1d.ways * 3):
            three_level.store(0, i * span)
        assert three_level.load(1, 0x0).version == 1
        check_invariants(three_level.hierarchy.protocol)

    def test_oracle_and_invariants_under_random_load(self, three_level):
        three_level.random_burst(8000, cores=4)
        check_invariants(three_level.hierarchy.protocol)

    def test_l2_filters_llc_traffic(self):
        two = TraceDriver(build_hierarchy(d2m_fs(2)), seed=71)
        three = TraceDriver(build_hierarchy(d2m_3l(2)), seed=71)
        for driver in (two, three):
            driver.random_burst(6000, cores=2, private_bytes=1 << 18)
        assert (three.hierarchy.network.total_messages
                <= two.hierarchy.network.total_messages)
