"""Unit tests for the analytic energy model."""

import pytest

from repro.common.stats import StatGroup
from repro.energy.model import (
    DRAM_ACCESS_PJ,
    EnergyAccountant,
    sram_structure,
)


class TestStructureShapes:
    def test_parallel_read_costs_more_than_way_predicted(self):
        full = sram_structure("full", 32 * 1024, 8.0, 8.0)
        predicted = sram_structure("pred", 32 * 1024, 1.0, 8.0)
        tagless = sram_structure("tagless", 32 * 1024, 1.0, 0.0)
        assert full.read_pj > predicted.read_pj > tagless.read_pj

    def test_bigger_banks_cost_more(self):
        small = sram_structure("s", 32 * 1024, 1.0, 0.0)
        big = sram_structure("b", 8 * 1024 * 1024, 1.0, 0.0)
        assert big.read_pj > small.read_pj
        assert big.leak_mw > small.leak_mw

    def test_dram_dwarfs_sram(self):
        l1 = sram_structure("l1", 32 * 1024, 8.0, 8.0)
        assert DRAM_ACCESS_PJ > 100 * l1.read_pj

    def test_static_energy_scales_with_time(self):
        s = sram_structure("s", 1024 * 1024, 1.0, 0.0)
        assert s.static_pj(2000) == pytest.approx(2 * s.static_pj(1000))


class TestAccountant:
    def make(self):
        acct = EnergyAccountant(StatGroup("energy"))
        acct.register(sram_structure("l1", 32 * 1024, 1.0, 8.0))
        acct.register(sram_structure("md1", 4096, 1.0, 8.0, d2m_only=True))
        return acct

    def test_double_registration_rejected(self):
        acct = self.make()
        with pytest.raises(ValueError):
            acct.register(sram_structure("l1", 1024, 1.0, 1.0))

    def test_charges_accumulate(self):
        acct = self.make()
        acct.charge_read("l1", 3)
        assert acct.reads_of("l1") == 3
        assert acct.structure_pj("l1") > 0

    def test_d2m_split(self):
        acct = self.make()
        acct.charge_read("l1")
        acct.charge_read("md1")
        total = acct.dynamic_pj()
        d2m = acct.dynamic_pj(d2m_only=True)
        standard = acct.dynamic_pj(d2m_only=False)
        assert total == pytest.approx(d2m + standard)
        assert d2m > 0

    def test_dram_included_and_excludable(self):
        acct = self.make()
        acct.charge_dram(2)
        assert acct.dynamic_pj() == pytest.approx(2 * DRAM_ACCESS_PJ)
        assert acct.dynamic_pj(include_dram=False) == 0

    def test_raw_charges(self):
        acct = self.make()
        acct.charge_raw("noc", 123.0)
        assert acct.dynamic_pj(include_dram=False) == pytest.approx(123.0)

    def test_reset(self):
        acct = self.make()
        acct.charge_read("l1")
        acct.charge_dram()
        acct.reset()
        assert acct.dynamic_pj() == 0

    def test_flush_writes_stats(self):
        acct = self.make()
        acct.charge_read("l1", 2)
        acct.flush()
        assert acct.stats.get("l1.reads") == 2
        assert acct.stats.get("l1.dynamic_pj") > 0

    def test_total_includes_static(self):
        acct = self.make()
        assert acct.total_pj(cycles=10_000) > 0
