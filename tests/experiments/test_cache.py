"""Tests for the experiment sweep disk cache."""

from repro.common.params import base_2l
from repro.experiments.runner import get_matrix


class TestDiskCache:
    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_FRESH", raising=False)
        first = get_matrix(workloads=["water"], configs=[base_2l(2)],
                           instructions=1_000, seed=5, quiet=True, jobs=1)
        assert list((tmp_path / "runs").glob("*.json"))
        second = get_matrix(workloads=["water"], configs=[base_2l(2)],
                            instructions=1_000, seed=5, quiet=True, jobs=1)
        assert second["water"]["Base-2L"] == first["water"]["Base-2L"]

    def test_key_isolation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        get_matrix(workloads=["water"], configs=[base_2l(2)],
                   instructions=1_000, seed=5, quiet=True, jobs=1)
        get_matrix(workloads=["water"], configs=[base_2l(2)],
                   instructions=1_500, seed=5, quiet=True, jobs=1)
        assert len(list((tmp_path / "runs").glob("*.json"))) == 2
