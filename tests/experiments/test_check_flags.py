"""Sweep-level sanitize / check-invariants wiring and cache upgrades."""

import pytest

import repro.experiments.runner as runner
from repro.common.params import base_2l, d2m_fs
from repro.experiments.runner import get_matrix


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    for var in ("REPRO_FRESH", "REPRO_WARMUP", "REPRO_JOBS",
                "REPRO_SANITIZE", "REPRO_SANITIZE_EVERY"):
        monkeypatch.delenv(var, raising=False)
    return tmp_path


def counting_run_spec(monkeypatch):
    calls = []
    real = runner.run_spec

    def counted(spec):
        calls.append(spec)
        return real(spec)

    monkeypatch.setattr(runner, "run_spec", counted)
    return calls


class TestCheckedSweep:
    def test_records_carry_check_provenance(self, cache):
        matrix = get_matrix(workloads=["water"],
                            configs=[d2m_fs(2), base_2l(2)],
                            instructions=1_500, seed=3, quiet=True, jobs=1,
                            sanitize=True, check_invariants=True)
        d2m = matrix["water"]["D2M-FS"]
        assert d2m.sanitized and d2m.invariants_checked
        assert d2m.invariants_ok and d2m.invariant_error == ""
        # Baselines have nothing to sanitize/walk: vacuous passes.
        base = matrix["water"]["Base-2L"]
        assert base.sanitized and base.invariants_checked
        assert base.invariants_ok

    def test_unchecked_record_upgraded_on_demand(self, cache, monkeypatch):
        calls = counting_run_spec(monkeypatch)
        plain_kwargs = dict(workloads=["water"], configs=[d2m_fs(2)],
                            instructions=1_500, seed=3, quiet=True, jobs=1)
        get_matrix(**plain_kwargs)
        assert len(calls) == 1
        # The cached record lacks the requested checks: re-simulated.
        get_matrix(**plain_kwargs, sanitize=True, check_invariants=True)
        assert len(calls) == 2
        # The upgraded record now satisfies both checked and plain sweeps.
        get_matrix(**plain_kwargs, sanitize=True, check_invariants=True)
        get_matrix(**plain_kwargs)
        assert len(calls) == 2

    def test_series_less_record_misses_when_timeline_requested(
            self, cache, monkeypatch):
        calls = counting_run_spec(monkeypatch)
        plain_kwargs = dict(workloads=["water"], configs=[d2m_fs(2)],
                            instructions=1_500, seed=3, quiet=True, jobs=1)
        get_matrix(**plain_kwargs)
        assert len(calls) == 1
        # The cached record carries no epoch series: re-simulated.
        matrix = get_matrix(**plain_kwargs, timeline=256)
        assert len(calls) == 2
        record = matrix["water"]["D2M-FS"]
        assert record.timeline and record.timeline["epochs"] > 0
        # The upgraded record satisfies both timed and plain sweeps.
        get_matrix(**plain_kwargs, timeline=256)
        get_matrix(**plain_kwargs)
        assert len(calls) == 2

    def test_sanitized_sweep_metrics_identical(self, cache, monkeypatch):
        kwargs = dict(workloads=["water"], configs=[d2m_fs(2)],
                      instructions=1_500, seed=3, quiet=True, jobs=1)
        plain = get_matrix(**kwargs)["water"]["D2M-FS"]
        monkeypatch.setenv("REPRO_FRESH", "1")
        checked = get_matrix(**kwargs, sanitize=True, sanitize_every=200,
                             check_invariants=True)["water"]["D2M-FS"]
        plain_json = plain.to_json()
        checked_json = checked.to_json()
        for field in ("sanitized", "invariants_checked", "invariants_ok",
                      "invariant_error"):
            plain_json.pop(field)
            checked_json.pop(field)
        assert plain_json == checked_json

    def test_parallel_sanitized_sweep(self, cache):
        matrix = get_matrix(workloads=["water", "lu"], configs=[d2m_fs(2)],
                            instructions=1_200, seed=3, quiet=True, jobs=2,
                            sanitize=True, check_invariants=True)
        for workload in ("water", "lu"):
            record = matrix[workload]["D2M-FS"]
            assert record.sanitized and record.invariants_ok


class TestEnvDefaults:
    def test_repro_sanitize_env_attaches(self, cache, monkeypatch):
        from repro.sim.runner import run_workload

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        outcome = run_workload(d2m_fs(2), "water", instructions=1_000, seed=3)
        assert outcome.sanitized
        assert outcome.spec.sanitize

    def test_explicit_flag_overrides_env(self, cache, monkeypatch):
        from repro.sim.runner import run_workload

        monkeypatch.setenv("REPRO_SANITIZE", "0")
        outcome = run_workload(d2m_fs(2), "water", instructions=1_000,
                               seed=3, sanitize=True)
        assert outcome.sanitized
