"""Smoke tests for the figure/table harnesses on a tiny in-memory matrix."""

import pytest

from repro.common.params import all_configs
from repro.experiments import (
    appendix_pkmo,
    fig5_traffic,
    fig6_edp,
    fig7_speedup,
    md1_coverage,
    table4_hit_ratios,
    table5_invalidations,
)
from repro.experiments.records import record_from_outcome
from repro.experiments.runner import by_category, gmean
from repro.sim.runner import run_workload
from repro.workloads.registry import get_spec


@pytest.fixture(scope="module")
def tiny_matrix():
    matrix = {}
    for workload in ("water", "tpcc"):
        category = get_spec(workload).category
        row = {}
        for config in all_configs(4):
            out = run_workload(config, workload, instructions=4_000, seed=3)
            row[config.name] = record_from_outcome(out, category)
        matrix[workload] = row
    return matrix


class TestHarnesses:
    def test_gmean(self):
        assert gmean([1.0, 4.0]) == pytest.approx(2.0)
        assert gmean([]) == 0.0

    def test_by_category_ordering(self, tiny_matrix):
        groups = by_category(tiny_matrix)
        assert list(groups) == ["HPC", "Database"]

    def test_fig5(self, tiny_matrix, capsys):
        summary = fig5_traffic.main(tiny_matrix)
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert set(summary) == {c.name for c in all_configs()}

    def test_table4(self, tiny_matrix, capsys):
        summary = table4_hit_ratios.main(tiny_matrix)
        assert "HPC" in summary and "Database" in summary
        assert "Table IV" in capsys.readouterr().out

    def test_table5(self, tiny_matrix, capsys):
        avg_private = table5_invalidations.main(tiny_matrix)
        assert 0 <= avg_private <= 1
        assert "Table V" in capsys.readouterr().out

    def test_fig6(self, tiny_matrix, capsys):
        summary = fig6_edp.main(tiny_matrix)
        assert summary["Base-2L"] == pytest.approx(1.0)
        assert "Figure 6" in capsys.readouterr().out

    def test_fig7(self, tiny_matrix, capsys):
        stats = fig7_speedup.main(tiny_matrix)
        assert stats["Base-2L"]["gmean_speedup"] == pytest.approx(1.0)
        assert "Figure 7" in capsys.readouterr().out

    def test_appendix(self, tiny_matrix, capsys):
        rates = appendix_pkmo.main(tiny_matrix)
        assert rates.get("A", 0) > 0
        assert "PKMO" in capsys.readouterr().out or True

    def test_md1_coverage(self, tiny_matrix, capsys):
        cov = md1_coverage.main(tiny_matrix)
        for c in cov.values():
            assert c["md1"] + c["md2"] + c["md3"] == pytest.approx(1.0)
