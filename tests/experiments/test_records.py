"""Tests for RunRecord serialization and construction."""

from repro.common.params import base_2l, d2m_ns_r
from repro.experiments.records import RunRecord, record_from_outcome
from repro.sim.runner import run_workload


class TestRoundtrip:
    def test_json_roundtrip(self):
        rec = RunRecord(workload="w", category="HPC", config="Base-2L",
                        instructions=100, msgs_per_ki=1.5,
                        events={"A": 2.0})
        again = RunRecord.from_json(rec.to_json())
        assert again == rec


class TestFromOutcome:
    def test_baseline_record(self):
        out = run_workload(base_2l(4), "water", instructions=2_000, seed=4)
        rec = record_from_outcome(out, "HPC")
        assert rec.config == "Base-2L"
        assert rec.category == "HPC"
        assert rec.instructions == 2_000
        assert rec.msgs_per_ki > 0
        assert rec.d2m_msgs_per_ki == 0  # baselines send no D2M traffic
        assert 0 <= rec.l1d_miss <= 1
        assert rec.cycles > 0
        assert rec.edp > 0

    def test_d2m_record_has_events(self):
        out = run_workload(d2m_ns_r(4), "water", instructions=2_000, seed=4)
        rec = record_from_outcome(out, "HPC")
        assert rec.events  # A/B/C/D populated
        assert rec.md1_hits > 0
        assert 0 <= rec.direct_ns_fraction <= 1
        assert rec.edp_d2m_share > 0


class TestHistDigests:
    def test_telemetry_off_leaves_hists_empty(self):
        out = run_workload(d2m_ns_r(4), "water", instructions=2_000, seed=4)
        assert record_from_outcome(out, "HPC").hists == {}

    def test_telemetry_on_fills_digests(self):
        out = run_workload(d2m_ns_r(4), "water", instructions=2_000, seed=4,
                           telemetry=True)
        rec = record_from_outcome(out, "HPC")
        assert "latency.L1" in rec.hists
        assert "noc.hops" in rec.hists
        digest = rec.hists["latency.L1"]
        assert {"count", "mean", "max", "p50", "p90", "p99"} <= set(digest)
        assert digest["count"] > 0

    def test_hists_survive_json_roundtrip(self):
        out = run_workload(d2m_ns_r(4), "water", instructions=2_000, seed=4,
                           telemetry=True)
        rec = record_from_outcome(out, "HPC")
        again = RunRecord.from_json(rec.to_json())
        assert again.hists == rec.hists

    def test_old_record_without_hists_field_still_loads(self):
        data = RunRecord(workload="w", category="HPC", config="Base-2L",
                         instructions=100).to_json()
        del data["hists"]
        assert RunRecord.from_json(data).hists == {}


class TestProfileDigest:
    def test_unprofiled_run_leaves_profile_empty(self):
        out = run_workload(d2m_ns_r(4), "water", instructions=2_000, seed=4)
        assert record_from_outcome(out, "HPC").profile == {}

    def test_profiled_run_persists_the_digest(self):
        from repro.obs.profile import validate_profile

        out = run_workload(d2m_ns_r(4), "water", instructions=2_000, seed=4,
                           profile=True)
        rec = record_from_outcome(out, "HPC")
        assert rec.profile
        assert validate_profile(rec.profile) == []
        assert rec.profile["slow_accesses"] > 0

    def test_profile_survives_json_roundtrip(self):
        out = run_workload(d2m_ns_r(4), "water", instructions=2_000, seed=4,
                           profile=True)
        rec = record_from_outcome(out, "HPC")
        again = RunRecord.from_json(rec.to_json())
        assert again.profile == rec.profile

    def test_old_record_without_profile_field_still_loads(self):
        data = RunRecord(workload="w", category="HPC", config="Base-2L",
                         instructions=100).to_json()
        del data["profile"]
        assert RunRecord.from_json(data).profile == {}
