"""Tests for the per-run breakdown report."""

from repro.common.params import base_2l, d2m_ns_r
from repro.experiments.report import full_report


class TestFullReport:
    def test_d2m_report_sections(self, capsys):
        full_report(d2m_ns_r(2), "water", instructions=2_000, seed=2)
        out = capsys.readouterr().out
        for section in ("Access outcomes", "Energy by structure",
                        "Traffic by message kind", "Protocol events"):
            assert section in out
        assert "md1" in out          # D2M structures listed
        assert "MEM_READ" in out     # message kinds listed

    def test_baseline_report_has_no_protocol_section(self, capsys):
        full_report(base_2l(2), "water", instructions=2_000, seed=2)
        out = capsys.readouterr().out
        assert "Protocol events" not in out
        assert "llc_tagdir" in out
