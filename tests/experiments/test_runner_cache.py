"""Per-run sweep cache: key sensitivity, hit/miss, recovery, parallelism."""

import json

import pytest

import repro.experiments.runner as runner
from repro.common.params import base_2l, d2m_fs
from repro.experiments.runner import SweepError, _cache_key, get_matrix


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_FRESH", raising=False)
    monkeypatch.delenv("REPRO_WARMUP", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    return tmp_path


def run_files(cache):
    return sorted((cache / "runs").glob("*.json"))


class TestCacheKey:
    BASE = dict(workload="water", config_name="Base-2L",
                instructions=1_000, seed=5, warmup=500)

    def key(self, **overrides):
        return _cache_key(**{**self.BASE, **overrides})

    def test_stable(self):
        assert self.key() == self.key()

    @pytest.mark.parametrize("field,value", [
        ("workload", "lu"),
        ("config_name", "D2M-FS"),
        ("instructions", 2_000),
        ("seed", 6),
        ("warmup", 100),
    ])
    def test_sensitive_to_every_input(self, field, value):
        assert self.key(**{field: value}) != self.key()

    def test_warmup_env_changes_selection(self, cache, monkeypatch):
        """REPRO_WARMUP is part of the key: no stale-matrix reuse."""
        get_matrix(workloads=["water"], configs=[base_2l(2)],
                   instructions=1_000, seed=5, quiet=True, jobs=1)
        assert len(run_files(cache)) == 1
        monkeypatch.setenv("REPRO_WARMUP", "100")
        get_matrix(workloads=["water"], configs=[base_2l(2)],
                   instructions=1_000, seed=5, quiet=True, jobs=1)
        assert len(run_files(cache)) == 2


class TestTelemetryCacheInterplay:
    def test_records_carry_hist_digests_by_default(self, cache):
        matrix = get_matrix(workloads=["water"], configs=[d2m_fs(2)],
                            instructions=1_000, seed=5, quiet=True, jobs=1)
        record = matrix["water"]["D2M-FS"]
        assert record.hists
        assert "latency.L1" in record.hists

    def test_record_without_hists_is_a_miss_when_requested(self, cache):
        get_matrix(workloads=["water"], configs=[d2m_fs(2)],
                   instructions=1_000, seed=5, quiet=True, jobs=1,
                   telemetry=False)
        [path] = run_files(cache)
        assert json.loads(path.read_text())["hists"] == {}
        before = path.stat().st_mtime_ns
        matrix = get_matrix(workloads=["water"], configs=[d2m_fs(2)],
                            instructions=1_000, seed=5, quiet=True, jobs=1)
        assert matrix["water"]["D2M-FS"].hists  # re-simulated with telemetry
        assert path.stat().st_mtime_ns != before

    def test_record_with_hists_serves_telemetry_off_sweeps(self, cache,
                                                           monkeypatch):
        get_matrix(workloads=["water"], configs=[d2m_fs(2)],
                   instructions=1_000, seed=5, quiet=True, jobs=1)

        def explode(spec):
            raise AssertionError("cache should have served this run")

        monkeypatch.setattr(runner, "run_spec", explode)
        matrix = get_matrix(workloads=["water"], configs=[d2m_fs(2)],
                            instructions=1_000, seed=5, quiet=True, jobs=1,
                            telemetry=False)
        assert matrix["water"]["D2M-FS"].hists

    def test_profile_request_re_misses_unprofiled_records(self, cache):
        from repro.obs.profile import validate_profile

        get_matrix(workloads=["water"], configs=[d2m_fs(2)],
                   instructions=1_000, seed=5, quiet=True, jobs=1)
        [path] = run_files(cache)
        assert json.loads(path.read_text())["profile"] == {}
        before = path.stat().st_mtime_ns
        matrix = get_matrix(workloads=["water"], configs=[d2m_fs(2)],
                            instructions=1_000, seed=5, quiet=True, jobs=1,
                            profile=True)
        record = matrix["water"]["D2M-FS"]
        assert record.profile and validate_profile(record.profile) == []
        assert path.stat().st_mtime_ns != before  # re-simulated, profiled
        # a profiled record then serves unprofiled sweeps from the cache
        after = path.stat().st_mtime_ns
        get_matrix(workloads=["water"], configs=[d2m_fs(2)],
                   instructions=1_000, seed=5, quiet=True, jobs=1)
        assert path.stat().st_mtime_ns == after

    def test_traced_sweep_stamps_runlog_and_specs(self, cache):
        from repro.experiments.runner import execute_plan, plan_matrix
        from repro.obs import runlog

        plan = plan_matrix(workloads=["water"], configs=[d2m_fs(2)],
                           instructions=1_000, seed=5)
        log_path = cache / "runlog.jsonl"
        runlog.configure(str(log_path))
        try:
            execute_plan(plan, quiet=True, jobs=1, trace="beef" * 4)
        finally:
            runlog.configure("")
        events = [json.loads(line)
                  for line in log_path.read_text().splitlines()]
        sweeps = [e for e in events
                  if e["event"] in ("sweep.start", "sweep.end")]
        assert len(sweeps) == 2
        assert all(e["trace"] == "beef" * 4 for e in sweeps)
        # the correlation id was stamped onto the specs that ran
        record = plan.matrix["water"]["D2M-FS"]
        assert record is not None

    def test_progress_jsonl_written(self, cache):
        get_matrix(workloads=["water"], configs=[d2m_fs(2)],
                   instructions=1_000, seed=5, quiet=True, jobs=1)
        events = [json.loads(line) for line in
                  (cache / "progress.jsonl").read_text().splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "sweep.start"
        assert "run.done" in kinds
        assert kinds[-1] == "sweep.end"

    def test_heartbeat_dir_cleaned_up(self, cache, monkeypatch):
        import os
        monkeypatch.delenv("REPRO_PROGRESS_DIR", raising=False)
        get_matrix(workloads=["water"], configs=[d2m_fs(2)],
                   instructions=1_000, seed=5, quiet=True, jobs=1)
        assert not list(cache.glob("progress-*"))
        assert "REPRO_PROGRESS_DIR" not in os.environ


class TestPerRunCache:
    def count_runs(self, monkeypatch):
        """Count actual simulations through the in-process worker path."""
        calls = []
        real = runner.run_spec

        def counting(spec):
            calls.append((spec.workload, spec.config.name))
            return real(spec)

        monkeypatch.setattr(runner, "run_spec", counting)
        return calls

    def test_adding_a_workload_reuses_completed_runs(self, cache,
                                                     monkeypatch):
        configs = [base_2l(2), d2m_fs(2)]
        calls = self.count_runs(monkeypatch)
        get_matrix(workloads=["water"], configs=configs,
                   instructions=1_000, seed=5, quiet=True, jobs=1)
        assert len(calls) == 2
        matrix = get_matrix(workloads=["water", "lu"], configs=configs,
                            instructions=1_000, seed=5, quiet=True, jobs=1)
        # only the new workload's runs were simulated
        assert len(calls) == 4
        assert {wl for wl, _ in calls[2:]} == {"lu"}
        assert set(matrix) == {"water", "lu"}
        assert len(run_files(cache)) == 4

    def test_corrupted_entry_is_a_miss_not_a_crash(self, cache, monkeypatch):
        first = get_matrix(workloads=["water"], configs=[base_2l(2)],
                           instructions=1_000, seed=5, quiet=True, jobs=1)
        [path] = run_files(cache)
        path.write_text('{"workload": "water", "trunca')  # killed mid-write
        calls = self.count_runs(monkeypatch)
        again = get_matrix(workloads=["water"], configs=[base_2l(2)],
                           instructions=1_000, seed=5, quiet=True, jobs=1)
        assert len(calls) == 1  # re-simulated
        assert again["water"]["Base-2L"] == first["water"]["Base-2L"]
        json.loads(path.read_text())  # rewritten, valid again

    def test_fresh_env_forces_resimulation(self, cache, monkeypatch):
        get_matrix(workloads=["water"], configs=[base_2l(2)],
                   instructions=1_000, seed=5, quiet=True, jobs=1)
        monkeypatch.setenv("REPRO_FRESH", "1")
        calls = self.count_runs(monkeypatch)
        get_matrix(workloads=["water"], configs=[base_2l(2)],
                   instructions=1_000, seed=5, quiet=True, jobs=1)
        assert len(calls) == 1

    def test_failed_run_reported_after_sweep_and_rest_cached(
            self, cache, monkeypatch):
        real = runner._simulate_record

        def flaky(spec):
            if spec.config.name == "D2M-FS":
                raise RuntimeError("boom")
            return real(spec)

        monkeypatch.setattr(runner, "_simulate_record", flaky)
        with pytest.raises(SweepError) as excinfo:
            get_matrix(workloads=["water"], configs=[base_2l(2), d2m_fs(2)],
                       instructions=1_000, seed=5, quiet=True, jobs=1)
        assert "D2M-FS" in str(excinfo.value)
        # the run that succeeded was persisted; a retry redoes only the
        # failure
        assert len(run_files(cache)) == 1
        monkeypatch.setattr(runner, "_simulate_record", real)
        matrix = get_matrix(workloads=["water"],
                            configs=[base_2l(2), d2m_fs(2)],
                            instructions=1_000, seed=5, quiet=True, jobs=1)
        assert set(matrix["water"]) == {"Base-2L", "D2M-FS"}


class TestParallelSweep:
    def test_two_workers_match_serial_records(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FRESH", raising=False)
        monkeypatch.delenv("REPRO_WARMUP", raising=False)
        configs = [base_2l(2), d2m_fs(2)]
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        serial = get_matrix(workloads=["water", "lu"], configs=configs,
                            instructions=1_000, seed=5, quiet=True, jobs=1)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        parallel = get_matrix(workloads=["water", "lu"], configs=configs,
                              instructions=1_000, seed=5, quiet=True, jobs=2)
        for workload in serial:
            for config in serial[workload]:
                assert (parallel[workload][config].to_json()
                        == serial[workload][config].to_json())

    def test_parallel_run_files_reload_identically(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_FRESH", raising=False)
        first = get_matrix(workloads=["water"],
                           configs=[base_2l(2), d2m_fs(2)],
                           instructions=1_000, seed=5, quiet=True, jobs=2)
        second = get_matrix(workloads=["water"],
                            configs=[base_2l(2), d2m_fs(2)],
                            instructions=1_000, seed=5, quiet=True, jobs=2)
        assert {cfg: rec.to_json() for cfg, rec in second["water"].items()} \
            == {cfg: rec.to_json() for cfg, rec in first["water"].items()}
