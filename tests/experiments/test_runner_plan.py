"""Plan/execute sweep API, tmp-litter reaper, concurrent-sweep isolation."""

import json
import os
import threading
import time

import pytest

import repro.experiments.runner as runner
from repro.common.params import base_2l, d2m_fs
from repro.experiments.runner import (
    TMP_ORPHAN_AGE_S,
    execute_plan,
    get_matrix,
    plan_matrix,
    reap_orphan_tmp,
    run_cache_key,
)
from repro.obs.progress import PROGRESS_DIR_ENV, resolve_heartbeat_dir


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_FRESH", raising=False)
    monkeypatch.delenv("REPRO_WARMUP", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    return tmp_path


class TestOrphanTmpReaper:
    def plant(self, directory, name, age_s):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / name
        path.write_text("{}")
        stamp = time.time() - age_s
        os.utime(path, (stamp, stamp))
        return path

    def test_stale_removed_fresh_kept(self, cache):
        runs = cache / "runs"
        stale = self.plant(runs, "abc.json.x1y2.tmp", TMP_ORPHAN_AGE_S + 60)
        fresh = self.plant(runs, "def.json.z9.tmp", 5)
        record = self.plant(runs, "abc.json", TMP_ORPHAN_AGE_S + 60)
        removed = reap_orphan_tmp()
        assert removed == [stale]
        assert not stale.exists()
        assert fresh.exists()  # may be a live writer mid-flight
        assert record.exists()  # real records are never touched

    def test_explicit_directory_and_age(self, tmp_path):
        target = tmp_path / "elsewhere"
        old = self.plant(target, "a.tmp", 100)
        young = self.plant(target, "b.tmp", 10)
        removed = reap_orphan_tmp(directory=target, max_age_s=50)
        assert removed == [old]
        assert young.exists()

    def test_missing_directory_is_quiet(self, tmp_path):
        assert reap_orphan_tmp(directory=tmp_path / "nope") == []

    def test_sweep_entry_reaps(self, cache, monkeypatch):
        """`repro sweep` clears crash litter before it starts."""
        from repro import cli

        stale = self.plant(cache / "runs", "zzz.json.q.tmp",
                           TMP_ORPHAN_AGE_S + 60)
        assert cli.main(["sweep", "--workloads", "water",
                         "--instructions", "800", "--jobs", "1"]) == 0
        assert not stale.exists()


class TestPlanMatrix:
    ARGS = dict(workloads=["water"], configs=[base_2l(2)],
                instructions=1_000, seed=5)

    def test_pending_then_cached_split(self, cache):
        plan = plan_matrix(**self.ARGS)
        assert plan.total == 1 and plan.cached == 0
        [item] = plan.pending
        assert item.key == run_cache_key("water", "Base-2L", 1_000, 5,
                                         plan.warmup)
        assert item.path.name == item.key + ".json"
        assert execute_plan(plan, jobs=1, quiet=True) == []
        assert plan.matrix["water"]["Base-2L"].workload == "water"

        again = plan_matrix(**self.ARGS)
        assert again.cached == 1 and not again.pending
        assert (again.matrix["water"]["Base-2L"].to_json()
                == plan.matrix["water"]["Base-2L"].to_json())

    def test_explicit_warmup_pins_keys_against_env(self, cache, monkeypatch):
        pinned = plan_matrix(warmup=123, **self.ARGS)
        monkeypatch.setenv("REPRO_WARMUP", "777")
        still_pinned = plan_matrix(warmup=123, **self.ARGS)
        env_driven = plan_matrix(**self.ARGS)
        assert pinned.pending[0].key == still_pinned.pending[0].key
        assert env_driven.warmup == 777
        assert env_driven.pending[0].key != pinned.pending[0].key

    def test_fresh_flag_overrides_cache(self, cache, monkeypatch):
        plan = plan_matrix(**self.ARGS)
        execute_plan(plan, jobs=1, quiet=True)
        monkeypatch.delenv("REPRO_FRESH", raising=False)
        assert not plan_matrix(fresh=True, **self.ARGS).cached
        assert plan_matrix(fresh=False, **self.ARGS).cached == 1
        monkeypatch.setenv("REPRO_FRESH", "1")
        assert not plan_matrix(**self.ARGS).cached  # None defers to env
        assert plan_matrix(fresh=False, **self.ARGS).cached == 1

    def test_get_matrix_equals_plan_plus_execute(self, cache):
        configs = [base_2l(2), d2m_fs(2)]
        via_plan = plan_matrix(workloads=["water"], configs=configs,
                               instructions=1_000, seed=5)
        assert execute_plan(via_plan, jobs=1, quiet=True) == []
        via_get = get_matrix(workloads=["water"], configs=configs,
                             instructions=1_000, seed=5, quiet=True, jobs=1)
        assert ({c: r.to_json() for c, r in via_get["water"].items()}
                == {c: r.to_json() for c, r in via_plan.matrix["water"].items()})

    def test_on_record_fires_per_landing(self, cache):
        landed = []
        plan = plan_matrix(workloads=["water"],
                           configs=[base_2l(2), d2m_fs(2)],
                           instructions=1_000, seed=5)
        execute_plan(plan, jobs=1, quiet=True,
                     on_record=lambda item, record:
                     landed.append((item.key, record.config)))
        assert sorted(cfg for _, cfg in landed) == ["Base-2L", "D2M-FS"]
        for key, _ in landed:
            json.loads((cache / "runs" / (key + ".json")).read_text())

    def test_custom_jsonl_path(self, cache, tmp_path):
        target = tmp_path / "own-progress.jsonl"
        plan = plan_matrix(**self.ARGS)
        execute_plan(plan, jobs=1, quiet=True, jsonl_path=str(target))
        events = [json.loads(line) for line
                  in target.read_text().splitlines()]
        assert events[0]["event"] == "sweep.start"
        assert not (cache / "progress.jsonl").exists()


class TestConcurrentSweepIsolation:
    """Regression: concurrent sweeps used to race on os.environ for the
    heartbeat directory; it is now threaded explicitly per plan."""

    def test_overlapping_sweeps_keep_separate_heartbeat_dirs(
            self, cache, monkeypatch):
        monkeypatch.setenv(PROGRESS_DIR_ENV, "/outer-default-sentinel")
        seen = {}
        barrier = threading.Barrier(2, timeout=30)
        real = runner._simulate_record

        def observing(spec):
            barrier.wait()  # both sweeps are mid-flight simultaneously
            seen.setdefault(spec.workload, set()).add(resolve_heartbeat_dir())
            return real(spec)

        monkeypatch.setattr(runner, "_simulate_record", observing)

        def sweep(workload, hb_dir):
            plan = plan_matrix(workloads=[workload], configs=[base_2l(2)],
                               instructions=800, seed=5)
            assert execute_plan(plan, jobs=1, quiet=True,
                                heartbeat_dir=hb_dir) == []

        dirs = {wl: str(cache / f"hb-{wl}") for wl in ("water", "lu")}
        for path in dirs.values():
            os.makedirs(path)
        threads = [threading.Thread(target=sweep, args=(wl, dirs[wl]))
                   for wl in dirs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert seen["water"] == {dirs["water"]}
        assert seen["lu"] == {dirs["lu"]}
        # the process environment was never written
        assert os.environ[PROGRESS_DIR_ENV] == "/outer-default-sentinel"
