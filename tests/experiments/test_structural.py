"""Tests for the structural tables (I-III)."""

from repro.experiments.structural_tables import table1, table2, table3


class TestTables:
    def test_table1_contains_all_encodings(self):
        out = table1()
        for token in ("Node5", "L1D[3]", "L1I[3]", "L2[6]", "MEM",
                      "LLC[21]", "LLC5[2]"):
            assert token in out

    def test_table2_lists_all_classes(self):
        out = table2()
        for token in ("uncached", "untracked", "private", "shared"):
            assert token in out

    def test_table3_lists_all_systems(self):
        out = table3()
        for token in ("Base-2L", "Base-3L", "D2M-FS", "D2M-NS", "D2M-NS-R",
                      "near-side", "far-side"):
            assert token in out
