"""Tests for the ASCII table renderer."""

from repro.experiments.tables import pct, render_table


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(["name", "value"], [["a", 1.0], ["bb", 22.5]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert out.count("\n") >= 4

    def test_number_formats(self):
        out = render_table(["n"], [[0.1234], [12.3], [1234.5]])
        assert "0.123" in out
        assert "12.3" in out
        assert "1235" in out or "1234" in out

    def test_pct(self):
        assert pct(0.5) == "50.0%"
