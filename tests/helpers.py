"""Shared test helpers: trace drivers, small configs, and oracles."""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Iterable, Optional

from repro.common.params import (
    CacheGeometry,
    MetadataGeometry,
    SystemConfig,
    base_2l,
    base_3l,
    d2m_fs,
    d2m_ns,
    d2m_ns_r,
)
from repro.common.types import Access, AccessKind
from repro.core.hierarchy import build_hierarchy
from repro.mem.address import AddressSpace, PageAllocator
from repro.mem.mainmem import VersionOracle


def small_config(config: SystemConfig) -> SystemConfig:
    """Shrink a config so eviction/spill paths trigger quickly."""
    return replace(
        config,
        l1i=CacheGeometry(4096, 4),
        l1d=CacheGeometry(4096, 4),
        llc=CacheGeometry(64 * 1024, 16),
        md1=MetadataGeometry(32, 4),
        md2=MetadataGeometry(64, 4),
        md3=MetadataGeometry(256, 4),
    )


ALL_FACTORIES = (base_2l, base_3l, d2m_fs, d2m_ns, d2m_ns_r)
D2M_FACTORIES = (d2m_fs, d2m_ns, d2m_ns_r)


class TraceDriver:
    """Feeds a hierarchy raw accesses with the sequential value oracle."""

    def __init__(self, hierarchy, seed: int = 0) -> None:
        self.hierarchy = hierarchy
        self.space = AddressSpace(hierarchy.amap, 0, PageAllocator())
        self.oracle = VersionOracle()
        self.rng = random.Random(seed)

    def access(self, core: int, kind: AccessKind, vaddr: int):
        acc = Access(core, kind, vaddr)
        paddr = self.space.translate(vaddr)
        line = self.hierarchy.amap.line_of(paddr)
        if kind is AccessKind.STORE:
            version = self.oracle.on_store(line)
            return self.hierarchy.access(acc, paddr, version)
        outcome = self.hierarchy.access(acc, paddr)
        self.oracle.check_load(line, outcome.version)
        return outcome

    def load(self, core: int, vaddr: int):
        return self.access(core, AccessKind.LOAD, vaddr)

    def store(self, core: int, vaddr: int):
        return self.access(core, AccessKind.STORE, vaddr)

    def ifetch(self, core: int, vaddr: int):
        return self.access(core, AccessKind.IFETCH, vaddr)

    def random_burst(self, count: int, cores: int,
                     shared_bytes: int = 1 << 16,
                     private_bytes: int = 1 << 17,
                     kinds: Optional[Iterable[AccessKind]] = None) -> None:
        """A mixed shared/private random trace (oracle-checked)."""
        kind_pool = list(kinds) if kinds else [
            AccessKind.IFETCH, AccessKind.LOAD, AccessKind.LOAD,
            AccessKind.STORE,
        ]
        for _ in range(count):
            core = self.rng.randrange(cores)
            kind = self.rng.choice(kind_pool)
            if self.rng.random() < 0.35:
                vaddr = self.rng.randrange(shared_bytes) & ~0x3
            else:
                vaddr = (1 << 20) * (core + 1) + (
                    self.rng.randrange(private_bytes) & ~0x3
                )
            if kind is AccessKind.IFETCH:
                vaddr = (1 << 28) + (vaddr & 0x7FFF)
            self.access(core, kind, vaddr)
