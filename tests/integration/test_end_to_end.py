"""End-to-end runs: every system x one workload per suite, oracle-checked."""

import pytest

from repro.common.params import all_configs
from repro.core.hierarchy import build_hierarchy
from repro.core.invariants import check_invariants
from repro.sim.simulator import Simulator
from repro.workloads.registry import make_workload

REPRESENTATIVES = ("bodytrack", "lu", "wikipedia", "mix2", "tpcc")


@pytest.mark.parametrize("workload_name", REPRESENTATIVES)
@pytest.mark.parametrize("config", all_configs(4),
                         ids=lambda c: c.name)
def test_oracle_checked_run(config, workload_name):
    hierarchy = build_hierarchy(config)
    workload = make_workload(workload_name, config.nodes, hierarchy.amap,
                             seed=6)
    simulator = Simulator(hierarchy, check_values=True)
    result = simulator.run(workload, 2_500, seed=6, warmup=500)
    assert result.instructions == 2_500
    if config.is_d2m:
        check_invariants(hierarchy.protocol)


def test_paper_shapes_on_shared_code_workload():
    """tpcc: the NS-R system must localize instruction service."""
    from repro.common.params import base_2l, d2m_ns_r
    from repro.sim.runner import run_workload
    base = run_workload(base_2l(4), "tpcc", instructions=30_000, seed=8)
    nsr = run_workload(d2m_ns_r(4), "tpcc", instructions=30_000, seed=8)
    assert nsr.result.ns_hit_ratio(True) > 0.3
    assert nsr.private_miss_fraction > 0.1
    # D2M-NS-R must not lose to the baseline on this workload
    assert nsr.perf.cycles < base.perf.cycles * 1.05
