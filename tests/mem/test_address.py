"""Unit + property tests for address math and address spaces."""

from hypothesis import given, strategies as st
import pytest

from repro.common.errors import ConfigError
from repro.mem.address import AddressMap, AddressSpace, PageAllocator


class TestAddressMap:
    def setup_method(self):
        self.amap = AddressMap(line_size=64, region_lines=16, page_size=4096)

    def test_line_of(self):
        assert self.amap.line_of(0) == 0
        assert self.amap.line_of(63) == 0
        assert self.amap.line_of(64) == 1

    def test_region_of(self):
        assert self.amap.region_of(1023) == 0
        assert self.amap.region_of(1024) == 1

    def test_line_in_region(self):
        assert self.amap.line_in_region(0) == 0
        assert self.amap.line_in_region(64 * 15) == 15
        assert self.amap.line_in_region(1024) == 0

    def test_compose_line_of_region(self):
        for region in (0, 7, 1234):
            for idx in (0, 5, 15):
                line = self.amap.line_of_region(region, idx)
                assert self.amap.region_of_line(line) == region
                assert self.amap.line_index_in_region(line) == idx

    def test_line_of_region_rejects_bad_index(self):
        with pytest.raises(ValueError):
            self.amap.line_of_region(0, 16)

    def test_region_must_fit_page(self):
        with pytest.raises(ConfigError):
            AddressMap(line_size=64, region_lines=128, page_size=4096)

    def test_rejects_nonpow2(self):
        with pytest.raises(ConfigError):
            AddressMap(line_size=48)

    @given(st.integers(min_value=0, max_value=2**48))
    def test_decomposition_consistent(self, addr):
        line = self.amap.line_of(addr)
        assert self.amap.region_of(addr) == self.amap.region_of_line(line)
        assert (self.amap.line_in_region(addr)
                == self.amap.line_index_in_region(line))
        assert self.amap.line_addr(line) <= addr < self.amap.line_addr(line + 1)


class TestAddressSpace:
    def test_translation_stable(self):
        space = AddressSpace(AddressMap(), asid=0)
        a = space.translate(0x12345)
        assert space.translate(0x12345) == a

    def test_offset_preserved(self):
        amap = AddressMap()
        space = AddressSpace(amap, asid=0)
        paddr = space.translate(0x12345)
        assert paddr & (amap.page_size - 1) == 0x345

    def test_distinct_spaces_do_not_collide(self):
        allocator = PageAllocator()
        amap = AddressMap()
        a = AddressSpace(amap, asid=1, allocator=allocator)
        b = AddressSpace(amap, asid=2, allocator=allocator)
        pa = a.translate(0x4000)
        pb = b.translate(0x4000)
        assert amap.page_of(pa) != amap.page_of(pb)

    def test_same_space_shares_pages(self):
        space = AddressSpace(AddressMap(), asid=0)
        amap = space.amap
        p1 = space.translate(0x4000)
        p2 = space.translate(0x4100)
        assert amap.page_of(p1) == amap.page_of(p2)

    def test_mapped_pages_counter(self):
        space = AddressSpace(AddressMap(), asid=0)
        space.translate(0)
        space.translate(4096)
        space.translate(100)  # same page as 0
        assert space.mapped_pages == 2


class TestPageAllocator:
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 10_000)),
                    min_size=1, max_size=200))
    def test_unique_pages(self, requests):
        allocator = PageAllocator()
        seen = {}
        for asid, vpage in requests:
            ppage = allocator.allocate(asid, vpage)
            key = (asid, vpage)
            if key in seen:
                assert seen[key] == ppage  # idempotent
            else:
                assert ppage not in seen.values() or \
                    list(seen.values()).count(ppage) == 0
                seen[key] = ppage
        assert len(set(seen.values())) == len(seen)
