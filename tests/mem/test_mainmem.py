"""Unit tests for main memory and the version oracle."""

import pytest

from repro.common.errors import InvariantViolation
from repro.common.stats import StatGroup
from repro.mem.mainmem import MainMemory, VersionOracle


class TestMainMemory:
    def test_unwritten_reads_zero(self):
        mem = MainMemory(StatGroup())
        assert mem.read_line(0x99) == 0

    def test_write_then_read(self):
        mem = MainMemory(StatGroup())
        mem.write_line(5, 3)
        assert mem.read_line(5) == 3

    def test_version_rollback_rejected(self):
        mem = MainMemory(StatGroup())
        mem.write_line(5, 3)
        with pytest.raises(InvariantViolation):
            mem.write_line(5, 2)

    def test_peek_does_not_count(self):
        mem = MainMemory(StatGroup())
        mem.peek(1)
        assert mem.stats.get("reads") == 0
        mem.read_line(1)
        assert mem.stats.get("reads") == 1

    def test_footprint(self):
        mem = MainMemory(StatGroup())
        mem.write_line(1, 1)
        mem.write_line(2, 1)
        assert mem.footprint_lines == 2


class TestVersionOracle:
    def test_monotonic_versions(self):
        oracle = VersionOracle()
        assert oracle.on_store(7) == 1
        assert oracle.on_store(7) == 2
        assert oracle.latest(7) == 2

    def test_check_load_passes_on_latest(self):
        oracle = VersionOracle()
        oracle.on_store(7)
        oracle.check_load(7, 1)

    def test_check_load_rejects_stale(self):
        oracle = VersionOracle()
        oracle.on_store(7)
        oracle.on_store(7)
        with pytest.raises(InvariantViolation):
            oracle.check_load(7, 1)

    def test_unwritten_line_expects_zero(self):
        VersionOracle().check_load(9, 0)
