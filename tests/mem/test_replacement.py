"""Unit + property tests for the replacement policies."""

from hypothesis import given, strategies as st
import pytest

from repro.mem.replacement import (
    LRUPolicy,
    PseudoLRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_initial_victim_is_way_zero(self):
        assert LRUPolicy(4).victim() == 0

    def test_victim_is_least_recent(self):
        p = LRUPolicy(4)
        for way in (0, 1, 2, 3, 0, 1):
            p.touch(way)
        assert p.victim() == 2

    def test_protected_skipped(self):
        p = LRUPolicy(4)
        for way in range(4):
            p.touch(way)
        assert p.victim(protected=[0]) == 1

    def test_all_protected_falls_back(self):
        p = LRUPolicy(2)
        p.touch(0)
        p.touch(1)
        assert p.victim(protected=[0, 1]) == 0

    def test_mru_way(self):
        p = LRUPolicy(4)
        p.touch(2)
        assert p.mru_way() == 2

    def test_rejects_bad_way(self):
        with pytest.raises(ValueError):
            LRUPolicy(4).touch(4)

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=100))
    def test_victim_never_mru(self, touches):
        p = LRUPolicy(8)
        for way in touches:
            p.touch(way)
        assert p.victim() != p.mru_way() or len(set(touches)) == 0


class TestPseudoLRU:
    def test_requires_pow2(self):
        with pytest.raises(ValueError):
            PseudoLRUPolicy(6)

    def test_victim_avoids_just_touched(self):
        p = PseudoLRUPolicy(8)
        p.touch(3)
        assert p.victim() != 3

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=64))
    def test_victim_in_range(self, touches):
        p = PseudoLRUPolicy(8)
        for way in touches:
            p.touch(way)
        assert 0 <= p.victim() < 8

    def test_protected_respected_when_possible(self):
        p = PseudoLRUPolicy(4)
        victim = p.victim(protected=[p._walk()])
        assert victim not in (p._walk(),) or victim in range(4)


class TestRandom:
    def test_deterministic_per_seed(self):
        a = [RandomPolicy(8, seed=5).victim() for _ in range(10)]
        b = [RandomPolicy(8, seed=5).victim() for _ in range(10)]
        assert a == b

    def test_protected_avoided(self):
        p = RandomPolicy(4, seed=1)
        for _ in range(50):
            assert p.victim(protected=[1, 2, 3]) == 0


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_policy("lru")(4), LRUPolicy)
        assert isinstance(make_policy("plru")(4), PseudoLRUPolicy)
        assert isinstance(make_policy("random")(4), RandomPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("fifo")
