"""Unit + property tests for the generic set-associative store."""

from hypothesis import given, settings, strategies as st
import pytest

from repro.mem.sram import SetAssocStore


class TestBasics:
    def test_miss_returns_none(self):
        store = SetAssocStore(4, 2)
        assert store.lookup(42) is None

    def test_insert_then_hit(self):
        store = SetAssocStore(4, 2)
        store.insert(42, "payload")
        assert store.lookup(42) == "payload"

    def test_insert_same_key_replaces(self):
        store = SetAssocStore(4, 2)
        store.insert(1, "a")
        assert store.insert(1, "b") is None
        assert store.lookup(1) == "b"
        assert len(store) == 1

    def test_eviction_returns_victim(self):
        store = SetAssocStore(1, 2)
        store.insert(0, "a")
        store.insert(1, "b")
        victim = store.insert(2, "c")
        assert victim == (0, "a")  # LRU

    def test_lru_updated_on_lookup(self):
        store = SetAssocStore(1, 2)
        store.insert(0, "a")
        store.insert(1, "b")
        store.lookup(0)
        assert store.insert(2, "c") == (1, "b")

    def test_peek_does_not_touch(self):
        store = SetAssocStore(1, 2)
        store.insert(0, "a")
        store.insert(1, "b")
        store.lookup(0, touch=False)
        assert store.insert(2, "c") == (0, "a")

    def test_invalidate(self):
        store = SetAssocStore(4, 2)
        store.insert(5, "x")
        assert store.invalidate(5) == "x"
        assert store.lookup(5) is None
        assert store.invalidate(5) is None

    def test_location_of(self):
        store = SetAssocStore(4, 2)
        store.insert(6, "x")
        set_idx, way = store.location_of(6)
        assert set_idx == 6 % 4
        slot = store.peek_way(set_idx, way)
        assert slot.key == 6 and slot.payload == "x"


class TestProtection:
    def test_protected_way_skipped(self):
        store = SetAssocStore(1, 2)
        store.insert(0, "keep")
        store.insert(1, "evictable")
        victim = store.insert(2, "new",
                              protected=lambda k, p: p == "keep")
        assert victim == (1, "evictable")

    def test_preview_matches_insert(self):
        store = SetAssocStore(1, 4)
        for key in range(4):
            store.insert(key, f"p{key}")
        preview = store.preview_victim(9)
        victim = store.insert(9, "new")
        assert preview == victim

    def test_preview_none_when_free(self):
        store = SetAssocStore(1, 4)
        store.insert(0, "a")
        assert store.preview_victim(1) is None

    def test_preview_none_when_present(self):
        store = SetAssocStore(1, 1)
        store.insert(0, "a")
        assert store.preview_victim(0) is None


class TestCustomIndex:
    def test_index_fn_used(self):
        store = SetAssocStore(4, 1, index_fn=lambda key: (key >> 4) % 4)
        store.insert(0x10, "a")
        assert store.location_of(0x10)[0] == 1

    def test_bad_index_fn_rejected(self):
        store = SetAssocStore(4, 1, index_fn=lambda key: 99)
        with pytest.raises(ValueError):
            store.insert(1, "a")


@settings(max_examples=50)
@given(st.lists(st.tuples(st.sampled_from(["insert", "lookup", "invalidate"]),
                          st.integers(0, 63)), max_size=300))
def test_model_conformance(ops):
    """The store behaves like a bounded dict (presence-wise)."""
    store = SetAssocStore(4, 4)
    model = {}
    for op, key in ops:
        if op == "insert":
            victim = store.insert(key, key * 10)
            model[key] = key * 10
            if victim is not None:
                del model[victim[0]]
        elif op == "lookup":
            got = store.lookup(key)
            assert got == model.get(key)
        else:
            got = store.invalidate(key)
            assert got == model.pop(key, None)
        assert len(store) == len(model)
        # capacity per set never exceeded
        for set_idx in range(4):
            assert store.set_occupancy(set_idx) <= 4
