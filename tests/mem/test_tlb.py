"""Unit tests for the two-level TLB."""

from repro.common.params import TLBConfig
from repro.common.stats import StatGroup
from repro.mem.tlb import TwoLevelTLB


def make_tlb():
    return TwoLevelTLB(TLBConfig(), l1_latency=1, l2_latency=8,
                       stats=StatGroup("tlb"))


class TestTLB:
    def test_first_touch_walks(self):
        tlb = make_tlb()
        result = tlb.translate(42)
        assert result.level == 3
        assert result.latency > 8

    def test_second_touch_hits_l1(self):
        tlb = make_tlb()
        tlb.translate(42)
        result = tlb.translate(42)
        assert result.level == 1
        assert result.latency == 1

    def test_l2_hit_after_l1_eviction(self):
        tlb = make_tlb()
        tlb.translate(0)
        # evict vpage 0 from the small L1 TLB (same-set pages)
        config = TLBConfig()
        sets = config.l1_entries // config.l1_ways
        for i in range(1, config.l1_ways + 1):
            tlb.translate(i * sets)
        result = tlb.translate(0)
        assert result.level == 2

    def test_stats_counted(self):
        tlb = make_tlb()
        tlb.translate(1)
        tlb.translate(1)
        assert tlb.stats.get("accesses") == 2
        assert tlb.stats.get("walks") == 1
        assert tlb.stats.get("l1_hits") == 1

    def test_flush(self):
        tlb = make_tlb()
        tlb.translate(7)
        tlb.flush()
        assert tlb.translate(7).level == 3
