"""Unit tests for message kinds and the Figure-5 traffic split."""

from repro.noc.messages import LINE_BYTES, MessageClass, MessageKind


class TestMessageKinds:
    def test_data_reply_carries_a_line(self):
        assert MessageKind.DATA_REPLY.payload_bytes > LINE_BYTES
        assert MessageKind.DATA_REPLY.carries_data

    def test_control_messages_are_small(self):
        assert MessageKind.INVALIDATE.payload_bytes < LINE_BYTES
        assert not MessageKind.INV_ACK.carries_data

    def test_d2m_only_classification(self):
        assert MessageKind.READ_MM.is_d2m_only
        assert MessageKind.MD2_SPILL.is_d2m_only
        assert MessageKind.NEW_MASTER.is_d2m_only
        assert not MessageKind.READ_REQ.is_d2m_only
        assert not MessageKind.DIRECT_READ.is_d2m_only

    def test_every_kind_classified(self):
        for kind in MessageKind:
            assert kind.message_class in (MessageClass.BASIC,
                                          MessageClass.D2M_ONLY)
            assert kind.payload_bytes > 0
