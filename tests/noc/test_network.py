"""Unit tests for traffic/energy accounting."""

from repro.common.stats import StatGroup
from repro.noc.messages import MessageKind
from repro.noc.network import Network
from repro.noc.topology import Crossbar, FAR_SIDE_HUB


def make_network():
    return Network(Crossbar(4), hop_latency=16, stats=StatGroup("noc"))


class TestNetwork:
    def test_send_returns_latency(self):
        net = make_network()
        assert net.send(MessageKind.READ_REQ, 0, FAR_SIDE_HUB) == 16

    def test_local_send_is_free_and_uncounted(self):
        net = make_network()
        assert net.send(MessageKind.DIRECT_READ, 2, 2) == 0
        assert net.total_messages == 0

    def test_message_counting(self):
        net = make_network()
        net.send(MessageKind.READ_REQ, 0, FAR_SIDE_HUB)
        net.send(MessageKind.DATA_REPLY, FAR_SIDE_HUB, 0)
        assert net.total_messages == 2
        assert net.total_bytes == (MessageKind.READ_REQ.payload_bytes
                                   + MessageKind.DATA_REPLY.payload_bytes)

    def test_class_split(self):
        net = make_network()
        net.send(MessageKind.READ_REQ, 0, 1)
        net.send(MessageKind.MD2_SPILL, 0, 1)
        split = net.messages_by_class()
        assert split["basic"] == 1
        assert split["d2m-only"] == 1

    def test_multicast_counts_each(self):
        net = make_network()
        latency = net.multicast(MessageKind.INVALIDATE, FAR_SIDE_HUB,
                                [0, 1, 2])
        assert latency == 16
        assert net.total_messages == 3

    def test_energy_positive_and_scales_with_payload(self):
        net = make_network()
        net.send(MessageKind.CTRL_REPLY, 0, 1)
        small = net.energy_pj
        net.send(MessageKind.DATA_REPLY, 0, 1)
        assert net.energy_pj - small > small

    def test_reset(self):
        net = make_network()
        net.send(MessageKind.READ_REQ, 0, 1)
        net.reset()
        assert net.total_messages == 0

    def test_flush_materializes_stats(self):
        net = make_network()
        net.send(MessageKind.READ_REQ, 0, 1)
        net.flush()
        assert net.stats.get("messages") == 1
        assert net.stats.get("bytes") > 0

    def test_messages_of(self):
        net = make_network()
        net.send(MessageKind.INVALIDATE, 0, 1)
        net.send(MessageKind.INVALIDATE, 0, 2)
        assert net.messages_of(MessageKind.INVALIDATE) == 2
        assert net.messages_of(MessageKind.READ_REQ) == 0

    def test_multicast_latency_is_worst_branch(self):
        net = make_network()
        # a branch to self is free; the others cost one hop each
        latency = net.multicast(MessageKind.INVALIDATE, 1, [1, 0, 2])
        assert latency == 16
        assert net.total_messages == 2  # the self branch is uncounted


class TestHopHistogram:
    def test_empty_network(self):
        hist = make_network().hop_histogram()
        assert hist.count == 0
        assert hist.name == "noc.hops"
        assert hist.unit == "hops"

    def test_zero_message_run_digests_empty(self):
        """No traffic must digest to {"count": 0}, not zeros that read
        as a real distribution sitting at zero."""
        digest = make_network().hop_histogram().summary()
        assert digest == {"count": 0.0}
        from repro.obs.histogram import validate_digest

        assert validate_digest(digest) == []

    def test_counts_every_on_network_message(self):
        net = make_network()
        net.send(MessageKind.READ_REQ, 0, 1)
        net.send(MessageKind.DATA_REPLY, 1, 0)
        net.send(MessageKind.DIRECT_READ, 2, 2)  # zero hops: uncounted
        hist = net.hop_histogram()
        assert hist.count == net.total_messages == 2

    def test_distribution_matches_topology_hops(self):
        net = make_network()
        for dst in (1, 2, 3):
            net.send(MessageKind.READ_REQ, 0, dst)
        hist = net.hop_histogram()
        # crossbar: every remote destination is exactly one hop away
        assert hist.max == net.topology.hops(0, 1)
        assert hist.percentile(99) == hist.max

    def test_histogram_is_derived_not_live(self):
        net = make_network()
        net.send(MessageKind.READ_REQ, 0, 1)
        first = net.hop_histogram()
        net.send(MessageKind.READ_REQ, 0, 2)
        assert first.count == 1  # snapshot, untouched by later traffic
        assert net.hop_histogram().count == 2

    def test_reset_clears_distribution(self):
        net = make_network()
        net.send(MessageKind.READ_REQ, 0, 1)
        net.reset()
        assert net.hop_histogram().count == 0
