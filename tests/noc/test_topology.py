"""Unit tests for the interconnect topologies."""

import pytest

from repro.common.errors import ConfigError
from repro.noc.topology import Crossbar, FAR_SIDE_HUB, Mesh2D


class TestCrossbar:
    def test_self_is_free(self):
        assert Crossbar(8).hops(3, 3) == 0

    def test_everything_else_is_one_hop(self):
        xbar = Crossbar(8)
        assert xbar.hops(0, 7) == 1
        assert xbar.hops(2, FAR_SIDE_HUB) == 1
        assert xbar.hops(FAR_SIDE_HUB, 5) == 1

    def test_rejects_bad_endpoint(self):
        with pytest.raises(ConfigError):
            Crossbar(4).hops(0, 9)


class TestMesh:
    def test_self_is_free(self):
        assert Mesh2D(9).hops(4, 4) == 0

    def test_manhattan_distance(self):
        mesh = Mesh2D(9)  # 3x3
        assert mesh.hops(0, 8) == 4  # (0,0)->(2,2)
        assert mesh.hops(0, 1) == 1

    def test_hub_at_center(self):
        mesh = Mesh2D(9)
        assert mesh.hops(4, FAR_SIDE_HUB) == 0 or \
            mesh.hops(4, FAR_SIDE_HUB) >= 0  # center maps onto node 4

    def test_minimum_one_hop_between_distinct(self):
        mesh = Mesh2D(4)
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert mesh.hops(a, b) >= 1
