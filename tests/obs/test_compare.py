"""Tests for the differential layer: payload diffing and severities."""

import json

import pytest

from repro.experiments.records import RunRecord
from repro.obs.compare import (
    NOTE,
    OK,
    REGRESSION,
    REGRESSION_EXIT,
    WARN,
    CompareError,
    ComparisonReport,
    Delta,
    Thresholds,
    compare_bench,
    compare_hist_digests,
    compare_matrices,
    compare_payloads,
    compare_records,
    kind_of,
    load_payload,
    matrix_to_json,
    newest_bench_path,
    resolve_auto_baseline,
    thresholds_from_percent,
)


def make_bench(ips_scale=1.0, mode="full", equivalent=True, **overrides):
    cells = []
    for config in ("Base-2L", "D2M-NS-R"):
        for workload in ("tpcc", "mix1"):
            cells.append({
                "config": config, "workload": workload,
                "ips": round(40_000.0 * ips_scale, 1),
                "phases_s": {"generate": 0.2, "hierarchy": 0.5,
                             "stats": 0.01},
                "simulate_s": 0.7,
                "equivalent": equivalent,
            })
    report = {
        "schema": 1, "date": "2026-08-06", "mode": mode,
        "matrix": {"configs": ["Base-2L", "D2M-NS-R"],
                   "workloads": ["tpcc", "mix1"], "seed": 1,
                   "instructions": 20_000, "warmup": 10_000,
                   "repetitions": 3},
        "env": {}, "cells": cells,
        "geomean_ips": round(40_000.0 * ips_scale, 1),
        "equivalence_checked": True, "equivalence_ok": equivalent,
    }
    report.update(overrides)
    return report


def make_record(**overrides):
    record = RunRecord("water", "sa", "D2M-NS-R", 1000, cycles=10_000.0,
                       msgs_per_ki=50.0, edp=3.0e8,
                       events={"A": 100.0, "D1": 40.0},
                       hists={"latency.L1": {"count": 900.0, "mean": 2.0,
                                             "max": 7.0, "p50": 1.0,
                                             "p90": 3.0, "p99": 7.0}})
    for name, value in overrides.items():
        setattr(record, name, value)
    return record


class TestDelta:
    def test_rel_delta(self):
        assert Delta("x", 100.0, 110.0).rel_delta == pytest.approx(0.10)
        assert Delta("x", 0.0, 0.0).rel_delta == 0.0
        assert Delta("x", 0.0, 5.0).rel_delta is None
        assert Delta("x", None, 5.0).rel_delta is None

    def test_json_round_trip_shape(self):
        payload = Delta("x", 1.0, 2.0, WARN, "why").to_json()
        assert payload == {"key": "x", "baseline": 1.0, "candidate": 2.0,
                           "severity": WARN, "note": "why"}


class TestComparisonReport:
    def test_exit_code_gates_only_on_regression(self):
        report = ComparisonReport("bench")
        report.add(Delta("a", 1.0, 1.0, OK))
        report.add(Delta("b", 1.0, 2.0, WARN))
        assert report.exit_code() == 0
        report.add(Delta("c", 1.0, 0.5, REGRESSION))
        assert report.exit_code() == REGRESSION_EXIT
        assert report.worst == REGRESSION
        assert len(report.regressions()) == 1

    def test_summary_line_verdicts(self):
        clean = ComparisonReport("record", "old", "new")
        clean.add(Delta("a", 1.0, 1.0, OK))
        assert "OK" in clean.summary_line()
        assert "old -> new" in clean.summary_line()
        broken = ComparisonReport("record")
        broken.add(Delta("a", 1.0, 9.0, REGRESSION))
        assert "REGRESSION" in broken.summary_line()


class TestCompareBench:
    def test_identical_reports_are_clean(self):
        report = compare_bench(make_bench(), make_bench())
        assert report.exit_code() == 0
        assert report.worst == OK
        assert {d.key for d in report.deltas} >= {
            "ips.Base-2L/tpcc", "ips.D2M-NS-R/mix1", "geomean_ips"}

    def test_ten_percent_drop_regresses_per_cell(self):
        report = compare_bench(make_bench(), make_bench(ips_scale=0.85))
        cells = [d for d in report.deltas if d.key.startswith("ips.")]
        assert cells and all(d.severity == REGRESSION for d in cells)
        assert report.exit_code() == REGRESSION_EXIT
        assert "dropped 15.0%" in cells[0].note

    def test_five_percent_drop_warns(self):
        report = compare_bench(make_bench(), make_bench(ips_scale=0.93))
        cells = [d for d in report.deltas if d.key.startswith("ips.")]
        assert all(d.severity == WARN for d in cells)
        assert report.exit_code() == 0

    def test_improvement_is_a_note(self):
        report = compare_bench(make_bench(), make_bench(ips_scale=1.30))
        cells = [d for d in report.deltas if d.key.startswith("ips.")]
        assert all(d.severity == NOTE for d in cells)
        assert "improved" in cells[0].note

    def test_mode_mismatch_caps_ips_at_note(self):
        quick = make_bench(ips_scale=0.5, mode="quick")
        quick["matrix"] = dict(quick["matrix"], instructions=4000)
        report = compare_bench(make_bench(), quick)
        assert report.exit_code() == 0
        ips = [d for d in report.deltas if d.key.startswith("ips.")]
        assert all(d.severity in (OK, NOTE) for d in ips)
        assert any("mode mismatch" in note for note in report.notes)

    def test_equivalence_failure_regresses_even_cross_mode(self):
        quick = make_bench(mode="quick", equivalent=False)
        report = compare_bench(make_bench(), quick)
        assert report.exit_code() == REGRESSION_EXIT
        keys = {d.key for d in report.regressions()}
        assert "equivalence_ok" in keys
        assert any(key.startswith("equivalence.") for key in keys)

    def test_missing_cell_warns(self):
        candidate = make_bench()
        dropped = candidate["cells"].pop()
        report = compare_bench(make_bench(), candidate)
        name = f"{dropped['config']}/{dropped['workload']}"
        only = [d for d in report.deltas if d.key == f"ips.{name}"]
        assert only[0].severity == WARN
        assert "only in baseline" in only[0].note

    def test_phase_shift_is_noted(self):
        candidate = make_bench()
        candidate["cells"][0]["phases_s"] = {"generate": 0.4,
                                             "hierarchy": 0.5,
                                             "stats": 0.01}
        report = compare_bench(make_bench(), candidate)
        shifted = [d for d in report.deltas
                   if d.key.startswith("phase.generate.")]
        assert shifted and shifted[0].severity == NOTE


class TestCompareRecords:
    def test_identical_records_are_clean(self):
        report = compare_records(make_record(), make_record())
        assert report.worst == OK
        assert report.exit_code() == 0

    def test_scalar_drift_classification(self):
        report = compare_records(make_record(),
                                 make_record(cycles=13_000.0,  # +30%
                                             msgs_per_ki=53.0))  # +6%
        by_key = {d.key: d for d in report.deltas}
        assert by_key["cycles"].severity == REGRESSION
        assert by_key["msgs_per_ki"].severity == WARN
        assert by_key["edp"].severity == OK

    def test_informational_caps_at_note(self):
        report = compare_records(make_record(),
                                 make_record(cycles=99_000.0),
                                 informational=True)
        assert report.worst == NOTE
        assert report.exit_code() == 0

    def test_event_counters_cap_at_warn(self):
        report = compare_records(make_record(),
                                 make_record(events={"A": 900.0,
                                                     "D1": 40.0}))
        delta = next(d for d in report.deltas if d.key == "events.A")
        assert delta.severity == WARN

    def test_cell_and_budget_mismatch_are_noted(self):
        other = make_record()
        other.workload, other.instructions = "tpcc", 9999
        report = compare_records(make_record(), other)
        assert any("different cells" in note for note in report.notes)
        assert any("budgets differ" in note for note in report.notes)

    def test_accepts_run_record_objects_and_dicts(self):
        as_dict = make_record().to_json()
        report = compare_records(make_record(), as_dict)
        assert report.worst == OK
        with pytest.raises(CompareError):
            compare_records(make_record(), 42)


class TestCompareHistDigests:
    BASE = {"latency.L1": {"count": 100.0, "mean": 2.0, "max": 7.0,
                           "p50": 1.0, "p90": 3.0, "p99": 7.0}}

    def test_equal_digests_no_deltas(self):
        assert compare_hist_digests(self.BASE, self.BASE) == []

    def test_multi_bucket_drift_regresses(self):
        cand = {"latency.L1": dict(self.BASE["latency.L1"], p99=63.0)}
        deltas = compare_hist_digests(self.BASE, cand)
        p99 = next(d for d in deltas if d.key.endswith(".p99"))
        assert p99.severity == REGRESSION
        assert "buckets" in p99.note

    def test_one_bucket_drift_is_quiet(self):
        cand = {"latency.L1": dict(self.BASE["latency.L1"], p90=5.0)}
        deltas = compare_hist_digests(self.BASE, cand)
        p90 = next(d for d in deltas if d.key.endswith(".p90"))
        assert p90.severity == OK  # ~1.67x < the 1.5+1 warn ratio

    def test_collapse_to_zero_warns(self):
        cand = {"latency.L1": dict(self.BASE["latency.L1"], p50=0.0)}
        deltas = compare_hist_digests(self.BASE, cand)
        p50 = next(d for d in deltas if d.key.endswith(".p50"))
        assert p50.severity == WARN
        assert "zero" in p50.note

    def test_missing_histogram_warns(self):
        deltas = compare_hist_digests(self.BASE, {})
        assert deltas[0].severity == WARN
        assert "only in baseline" in deltas[0].note

    def test_cap_applies(self):
        cand = {"latency.L1": dict(self.BASE["latency.L1"], p99=63.0)}
        deltas = compare_hist_digests(self.BASE, cand, cap=NOTE)
        assert all(d.severity in (OK, NOTE) for d in deltas)


class TestCompareMatrices:
    def test_cell_sets_and_prefixes(self):
        base = {"water": {"Base-2L": make_record().to_json(),
                          "D2M-NS-R": make_record().to_json()}}
        cand = {"water": {"Base-2L": make_record().to_json()}}
        report = compare_matrices(base, cand)
        missing = next(d for d in report.deltas
                       if d.key == "water/D2M-NS-R")
        assert missing.severity == WARN
        assert any(d.key.startswith("water/Base-2L:cycles")
                   for d in report.deltas)

    def test_matrix_to_json_feeds_compare(self):
        matrix = {"water": {"Base-2L": make_record()}}
        payload = matrix_to_json(matrix)
        report = compare_matrices(payload, payload)
        assert report.worst == OK


class TestKindsAndLoading:
    def test_kind_of(self):
        assert kind_of(make_bench()) == "bench"
        assert kind_of(make_record().to_json()) == "record"
        assert kind_of({"water": {"Base-2L": make_record().to_json()}}) \
            == "matrix"
        with pytest.raises(CompareError):
            kind_of({"unrelated": 1})
        with pytest.raises(CompareError):
            kind_of([1, 2])

    def test_compare_payloads_dispatch_and_mismatch(self):
        assert compare_payloads(make_bench(), make_bench()).kind == "bench"
        with pytest.raises(CompareError):
            compare_payloads(make_bench(), make_record().to_json())

    def test_load_payload_file_and_errors(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(make_bench()))
        assert kind_of(load_payload(path)) == "bench"
        with pytest.raises(CompareError):
            load_payload(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(CompareError):
            load_payload(bad)

    def test_load_payload_directory_builds_matrix(self, tmp_path):
        for config in ("Base-2L", "D2M-NS-R"):
            record = make_record()
            record.config = config
            (tmp_path / f"{config}.json").write_text(
                json.dumps(record.to_json()))
        (tmp_path / "torn.json").write_text("{")
        matrix = load_payload(tmp_path)
        assert kind_of(matrix) == "matrix"
        assert set(matrix["water"]) == {"Base-2L", "D2M-NS-R"}
        with pytest.raises(CompareError):
            load_payload(tmp_path / "sub")  # missing dir


class TestBaselineResolution:
    def test_newest_bench_path_orders_lexically(self, tmp_path):
        assert newest_bench_path(tmp_path) is None
        (tmp_path / "BENCH_2026-01-05.json").write_text("{}")
        (tmp_path / "BENCH_2026-08-06.json").write_text("{}")
        assert newest_bench_path(tmp_path).name == "BENCH_2026-08-06.json"

    def test_auto_outside_git_falls_back_to_disk(self, tmp_path):
        (tmp_path / "BENCH_2026-08-06.json").write_text(
            json.dumps(make_bench()))
        label, payload = resolve_auto_baseline(tmp_path)
        assert label == "BENCH_2026-08-06.json"
        assert kind_of(payload) == "bench"

    def test_auto_with_nothing_returns_none(self, tmp_path):
        assert resolve_auto_baseline(tmp_path) is None

    def test_auto_in_this_repo_reads_head(self):
        from pathlib import Path

        resolved = resolve_auto_baseline(Path(__file__).parents[2])
        assert resolved is not None
        label, payload = resolved
        assert label.startswith("BENCH_")
        assert kind_of(payload) == "bench"


class TestThresholds:
    def test_from_percent(self):
        thresholds = thresholds_from_percent(ips_fail_pct=8.0,
                                             metric_fail_pct=40.0)
        assert thresholds.ips_fail == pytest.approx(0.08)
        assert thresholds.ips_warn == pytest.approx(0.04)
        assert thresholds.metric_fail == pytest.approx(0.40)
        assert thresholds.metric_warn == pytest.approx(0.10)

    def test_abs_floor_silences_noise(self):
        tight = Thresholds(abs_floor=1.0)
        base = make_record()
        cand = make_record(msgs_per_ki=50.5)  # +1% but below the floor
        report = compare_records(base, cand, thresholds=tight)
        delta = next(d for d in report.deltas if d.key == "msgs_per_ki")
        assert delta.severity == OK
