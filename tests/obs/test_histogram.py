"""Unit tests for the log2-bucket histogram primitive."""

import pytest

from repro.obs.histogram import (
    N_BUCKETS,
    Histogram,
    HistogramSet,
    bucket_bounds,
    bucket_of,
    merge_summaries,
)


class TestBucketing:
    def test_bucket_of_matches_bit_length(self):
        assert bucket_of(0) == 0
        assert bucket_of(1) == 1
        assert bucket_of(2) == 2
        assert bucket_of(3) == 2
        assert bucket_of(4) == 3
        assert bucket_of(1023) == 10
        assert bucket_of(1024) == 11

    def test_bounds_cover_their_bucket(self):
        for value in (0, 1, 2, 3, 7, 8, 100, 2**40):
            lo, hi = bucket_bounds(bucket_of(value))
            assert lo <= value <= hi

    def test_huge_values_clamp_to_last_bucket(self):
        assert bucket_of(2 ** (N_BUCKETS + 5)) == N_BUCKETS - 1


class TestHistogram:
    def test_empty(self):
        hist = Histogram("x")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0
        assert hist.summary()["count"] == 0

    def test_record_updates_count_total_max(self):
        hist = Histogram("x", unit="cycles")
        for value in (1, 2, 3, 100):
            hist.record(value)
        assert hist.count == 4
        assert hist.total == 106
        assert hist.max == 100
        assert hist.mean == pytest.approx(26.5)

    def test_percentile_is_bucket_bound_capped_at_max(self):
        hist = Histogram("x")
        for _ in range(99):
            hist.record(1)
        hist.record(100)
        assert hist.percentile(50) == 1
        # p100 tail lands in 100's bucket (64..127) but caps at max seen
        assert hist.percentile(100) == 100

    def test_record_many_equals_repeated_record(self):
        one = Histogram("a")
        many = Histogram("b")
        for _ in range(7):
            one.record(12)
        many.record_many(12, 7)
        assert one.count == many.count
        assert one.total == many.total
        assert list(one.nonzero_buckets()) == list(many.nonzero_buckets())

    def test_merge(self):
        a = Histogram("x")
        b = Histogram("x")
        a.record(1)
        b.record(1000)
        a.merge(b)
        assert a.count == 2
        assert a.max == 1000

    def test_json_roundtrip(self):
        hist = Histogram("lat", unit="cycles")
        for value in (0, 1, 5, 70000):
            hist.record(value)
        back = Histogram.from_json(hist.to_json())
        assert back.name == "lat"
        assert back.unit == "cycles"
        assert back.count == hist.count
        assert back.summary() == hist.summary()


class TestHistogramSet:
    def test_get_creates_lazily(self):
        hists = HistogramSet()
        assert len(hists) == 0
        hists.get("a").record(1)
        assert "a" in hists
        assert hists.get("a").count == 1

    def test_summaries_skip_empty(self):
        hists = HistogramSet()
        hists.get("empty")
        hists.get("full").record(3)
        assert set(hists.summaries()) == {"full"}

    def test_json_roundtrip_and_merge(self):
        hists = HistogramSet()
        hists.get("a").record(2)
        other = HistogramSet.from_json(hists.to_json())
        other.get("a").record(4)
        hists.merge(other)
        assert hists.get("a").count == 3


class TestMergeSummaries:
    def test_stable_union_first_wins(self):
        merged = merge_summaries([
            {"a": {"count": 1, "p50": 2}},
            {"a": {"count": 3, "p50": 4}, "b": {"count": 1, "p50": 1}},
        ])
        assert set(merged) == {"a", "b"}
        assert merged["a"]["count"] == 1  # first summary carrying "a" wins
        assert merged["b"]["count"] == 1
