"""The metrics registry, its exposition, and the --metrics-schema lint."""

import pytest

from repro.obs.metrics import (
    METRIC_SCHEMA,
    MetricsRegistry,
    validate_exposition,
    validate_schema,
)
from tools.lint_repro import check_metrics_schema, main as lint_main


class TestSchema:
    def test_declared_schema_is_well_formed(self):
        assert validate_schema() == []

    def test_counter_names_must_end_in_total(self):
        bad = {"repro_requests": ("counter", "h", ())}
        assert any("_total" in p for p in validate_schema(bad))

    def test_invalid_names_labels_and_types(self):
        problems = validate_schema({
            "Bad-Name": ("counter", "h", ()),
            "repro_x_total": ("dial", "h", ()),
            "repro_y_total": ("counter", "", ()),
            "repro_z_total": ("counter", "h", ("le",)),
            "repro_w_total": ("counter", "h", ("a", "a")),
        })
        assert any("invalid metric name" in p for p in problems)
        assert any("unknown type" in p for p in problems)
        assert any("help" in p for p in problems)
        assert any("reserved" in p for p in problems)
        assert any("duplicate" in p for p in problems)


class TestRegistry:
    def test_counter_gauge_histogram_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("repro_http_requests_total",
                     endpoint="/healthz", status="200")
        registry.inc("repro_http_requests_total", 2,
                     endpoint="/healthz", status="200")
        assert registry.value("repro_http_requests_total",
                              endpoint="/healthz", status="200") == 3
        registry.set("repro_queue_depth", 7)
        registry.set("repro_queue_depth", 2)
        assert registry.value("repro_queue_depth") == 2
        registry.observe("repro_stage_ns", 100, stage="validate")
        registry.observe("repro_stage_ns", 100_000, stage="validate")
        hist = registry.histogram("repro_stage_ns", stage="validate")
        assert hist is not None and hist.count == 2
        # untouched series read as zero / absent
        assert registry.value("repro_cache_hits_total") == 0.0
        assert registry.histogram("repro_stage_ns", stage="respond") is None

    def test_mismatches_raise_immediately(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            registry.inc("repro_made_up_total")
        with pytest.raises(ValueError):  # gauge used as counter
            registry.inc("repro_queue_depth")
        with pytest.raises(ValueError):  # missing declared labels
            registry.inc("repro_http_requests_total")
        with pytest.raises(ValueError):  # undeclared label
            registry.set("repro_queue_depth", 1, shard="a")
        with pytest.raises(ValueError):  # counters are monotonic
            registry.inc("repro_simulations_total", -1)

    def test_render_is_schema_valid_exposition(self):
        registry = MetricsRegistry()
        registry.inc("repro_http_requests_total",
                     endpoint="/runs/:id", status="200")
        registry.inc("repro_jobs_total", outcome="done")
        registry.set("repro_worker_lanes", 2, state="idle")
        registry.observe("repro_stage_ns", 12345, stage="simulate")
        text = registry.render()
        assert validate_exposition(text) == []
        assert "# TYPE repro_http_requests_total counter" in text
        assert ('repro_http_requests_total'
                '{endpoint="/runs/:id",status="200"} 1') in text
        # histograms expose cumulative buckets plus +Inf/sum/count
        assert 'repro_stage_ns_bucket{stage="simulate",le="+Inf"} 1' in text
        assert 'repro_stage_ns_sum{stage="simulate"} 12345' in text
        assert 'repro_stage_ns_count{stage="simulate"} 1' in text
        # uptime is always present after a render
        assert "repro_uptime_seconds" in text

    def test_untouched_metrics_are_omitted(self):
        text = MetricsRegistry().render()
        assert "repro_http_requests_total" not in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.inc("repro_http_requests_total",
                     endpoint='we"ird\\path', status="400")
        text = registry.render()
        assert 'we\\"ird\\\\path' in text
        assert validate_exposition(text) == []


class TestExpositionValidator:
    def test_catches_undeclared_and_mistyped_metrics(self):
        bad = ("# TYPE repro_unknown_total counter\n"
               "repro_unknown_total 1\n")
        assert any("undeclared" in p for p in validate_exposition(bad))
        mistyped = ("# TYPE repro_queue_depth counter\n"
                    "repro_queue_depth 1\n")
        assert any("typed" in p for p in validate_exposition(mistyped))

    def test_catches_label_mismatch_and_garbage(self):
        bad = ("# TYPE repro_jobs_total counter\n"
               'repro_jobs_total{shard="x"} 1\n')
        assert any("labels" in p for p in validate_exposition(bad))
        assert any("unparseable" in p
                   for p in validate_exposition("!!! not a metric\n"))
        bad_value = ("# TYPE repro_queue_depth gauge\n"
                     "repro_queue_depth many\n")
        assert any("non-numeric" in p
                   for p in validate_exposition(bad_value))

    def test_sample_before_type_line_is_flagged(self):
        text = ("repro_queue_depth 1\n"
                "# TYPE repro_queue_depth gauge\n")
        assert any("precedes" in p for p in validate_exposition(text))


class TestLintEntry:
    def test_registry_self_check_passes_with_no_paths(self, capsys):
        assert lint_main(["--metrics-schema"]) == 0
        assert "valid" in capsys.readouterr().out

    def test_valid_scrape_passes(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.inc("repro_simulations_total")
        scrape = tmp_path / "metrics.txt"
        scrape.write_text(registry.render())
        assert lint_main(["--metrics-schema", str(scrape)]) == 0
        assert "conform" in capsys.readouterr().out

    def test_bad_scrape_fails(self, tmp_path):
        scrape = tmp_path / "metrics.txt"
        scrape.write_text("repro_unknown_total 3\n")
        assert lint_main(["--metrics-schema", str(scrape)]) == 1

    def test_empty_and_unreadable_files_are_problems(self, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        problems = check_metrics_schema([empty, tmp_path / "missing.txt"])
        assert any("empty" in p for p in problems)
        assert any("unreadable" in p for p in problems)

    def test_every_declared_metric_has_help_and_type(self):
        # the renderer derives HELP/TYPE from the schema; spot-check the
        # contract stays total
        for name, (mtype, help_text, _labels) in METRIC_SCHEMA.items():
            assert help_text, name
            assert mtype in ("counter", "gauge", "histogram"), name
