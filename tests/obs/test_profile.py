"""Slow-tail attribution: synthetic unit tests plus a real profiled run."""

import pytest

from repro.common.params import d2m_ns_r
from repro.common.stats import StatGroup
from repro.obs.profile import (
    PROFILE_KEYS,
    UNCLASSIFIED,
    AttributionProfiler,
    profile_ranking,
    profile_text,
    validate_profile,
)


class FakeHierarchy:
    def __init__(self, events):
        self.protocol = type("P", (), {"events": events})()


def synthetic_profile():
    return {
        "driver": "batched", "wall_s": 2.0, "fast_s": 1.5, "slow_s": 0.5,
        "chunks": 4, "slow_accesses": 10,
        "classes": {"d2m.D1": {"s": 0.3, "n": 6},
                    "d2m.B": {"s": 0.2, "n": 4}},
        "hists": {},
    }


class TestAttribution:
    def test_emit_resolves_through_the_spec_index(self):
        profiler = AttributionProfiler()
        profiler.slow_start()
        profiler.emit("md3.classify", detail="D1")
        profiler.slow_done(1000)
        assert profiler.class_ns == {"d2m.D1": 1000.0}
        assert profiler.class_n == {"d2m.D1": 1}

    def test_multi_class_access_splits_time_equally(self):
        profiler = AttributionProfiler()
        profiler.slow_start()
        profiler.emit("md3.classify", detail="D1")
        profiler.emit("mem.writeback")
        profiler.slow_done(1000)
        assert profiler.class_ns == {"d2m.D1": 500.0, "d2m.wb": 500.0}
        # each class still counts the access once
        assert profiler.class_n == {"d2m.D1": 1, "d2m.wb": 1}

    def test_unmatched_access_lands_in_unclassified(self):
        profiler = AttributionProfiler()
        profiler.slow_start()
        profiler.emit("no.such.kind", detail="x")
        profiler.slow_done(700)
        assert profiler.class_ns == {UNCLASSIFIED: 700.0}

    def test_stat_diffs_attribute_the_abc_taxonomy(self):
        events = StatGroup("events")
        profiler = AttributionProfiler()
        profiler.bind(FakeHierarchy(events))
        profiler.slow_start()
        events.add("B", 1)
        profiler.slow_done(400)
        assert profiler.class_ns == {"d2m.B": 400.0}
        # a counter that does not move between start and done is silent
        profiler.slow_start()
        profiler.slow_done(100)
        assert profiler.class_ns["d2m.B"] == 400.0
        assert profiler.class_ns[UNCLASSIFIED] == 100.0

    def test_baselines_without_events_group_stay_unclassified(self):
        profiler = AttributionProfiler()
        profiler.bind(object())  # no .protocol.events
        profiler.slow_start()
        profiler.slow_done(50)
        assert profiler.class_ns == {UNCLASSIFIED: 50.0}

    def test_chunk_split_fast_vs_slow(self):
        profiler = AttributionProfiler()
        profiler.slow_start()
        profiler.slow_done(300)
        profiler.chunk_done(1000)
        profiler.chunk_done(500)  # no slow accesses this chunk
        assert profiler.slow_ns == 300
        assert profiler.fast_ns == 700 + 500
        assert profiler.chunks == 2
        # a chunk timed shorter than its own slow tail never goes negative
        profiler.slow_start()
        profiler.slow_done(900)
        profiler.chunk_done(600)
        assert profiler.fast_ns == 1200


class TestSummary:
    def test_summary_matches_schema_and_conserves_time(self):
        profiler = AttributionProfiler()
        profiler.slow_start()
        profiler.emit("md3.classify", detail="D2")
        profiler.slow_done(1_000_000)
        profiler.chunk_done(3_000_000)
        digest = profiler.summary()
        assert validate_profile(digest) == []
        assert tuple(digest) == PROFILE_KEYS
        assert digest["driver"] == "batched"
        assert digest["wall_s"] == pytest.approx(0.003)
        assert digest["slow_s"] == pytest.approx(0.001)
        assert digest["fast_s"] == pytest.approx(0.002)
        class_seconds = sum(entry["s"]
                            for entry in digest["classes"].values())
        assert class_seconds == pytest.approx(digest["slow_s"])
        assert digest["hists"]["chunk_ns"]["count"] == 1.0
        assert digest["hists"]["slow_access_ns"]["count"] == 1.0


class TestRankingAndText:
    def test_ranking_sorts_by_seconds_then_tid(self):
        profile = synthetic_profile()
        profile["classes"]["d2m.A.llc"] = {"s": 0.2, "n": 1}
        rows = profile_ranking(profile)
        assert rows[0] == ("d2m.D1", 0.3, 6)
        assert [tid for tid, _, _ in rows[1:]] == ["d2m.A.llc", "d2m.B"]

    def test_ranking_tolerates_malformed_digests(self):
        assert profile_ranking({}) == []
        assert profile_ranking({"classes": "nope"}) == []
        assert profile_ranking({"classes": {"x": 3}}) == []

    def test_text_renders_header_and_rows(self):
        text = profile_text(synthetic_profile())
        assert "slow-tail attribution" in text
        assert "10 fallback accesses" in text
        lines = text.splitlines()
        assert "d2m.D1" in lines[1]  # most expensive first
        assert profile_text({}).startswith("no attribution profile")


class TestValidateProfile:
    def test_empty_digest_is_the_unprofiled_contract(self):
        assert validate_profile({}) == []

    def test_non_mapping_and_key_errors(self):
        assert validate_profile("x")
        missing = synthetic_profile()
        del missing["chunks"]
        missing["extra"] = 1
        problems = validate_profile(missing)
        assert any("missing" in p for p in problems)
        assert any("unknown" in p for p in problems)

    def test_negative_times_and_malformed_classes(self):
        bad = synthetic_profile()
        bad["slow_s"] = -1
        bad["classes"]["d2m.D1"] = {"s": "fast", "n": 1}
        problems = validate_profile(bad)
        assert any("slow_s" in p for p in problems)
        assert any("d2m.D1" in p for p in problems)


class TestRealRun:
    def test_profiled_run_produces_a_valid_nonempty_digest(self):
        from repro.sim.runner import run_workload

        outcome = run_workload(d2m_ns_r(8), "water", instructions=3000,
                               warmup=200, seed=3, profile=True)
        digest = outcome.profile_summary()
        assert validate_profile(digest) == []
        assert digest["slow_accesses"] > 0
        ranked = profile_ranking(digest)
        assert ranked, "a D2M run must exercise at least one class"
        # the ranking names real spec transition ids
        assert any(tid.startswith("d2m.") for tid, _, _ in ranked)

    def test_profiled_run_keeps_statistics_bit_identical(self):
        from repro.sim.runner import run_workload

        plain = run_workload(d2m_ns_r(8), "water", instructions=2000,
                             warmup=200, seed=3, batched=True)
        profiled = run_workload(d2m_ns_r(8), "water", instructions=2000,
                                warmup=200, seed=3, profile=True)
        assert plain.result.stats.flatten() == profiled.result.stats.flatten()
        assert plain.profile_summary() == {}  # off by default
