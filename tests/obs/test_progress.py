"""Tests for sweep progress: heartbeats, rendering, progress.jsonl."""

import io
import json
import os
import subprocess
import sys

from repro.obs.progress import (
    PROGRESS_DIR_ENV,
    Heartbeat,
    SweepProgress,
    _pid_alive,
    read_heartbeats,
)


def _dead_pid() -> int:
    """A PID that definitely no longer names a live process."""
    proc = subprocess.Popen([sys.executable, "-c", ""])
    proc.wait()
    return proc.pid


class TestHeartbeat:
    def test_from_env_requires_directory(self, monkeypatch, tmp_path):
        monkeypatch.delenv(PROGRESS_DIR_ENV, raising=False)
        assert Heartbeat.from_env("x") is None
        monkeypatch.setenv(PROGRESS_DIR_ENV, str(tmp_path / "missing"))
        assert Heartbeat.from_env("x") is None
        monkeypatch.setenv(PROGRESS_DIR_ENV, str(tmp_path))
        assert Heartbeat.from_env("x") is not None

    def test_beat_writes_rate_limited(self, tmp_path):
        path = tmp_path / "hb-1.json"
        beat = Heartbeat(str(path), "tpcc/D2M-NS-R", min_interval_s=3600)
        beat.beat(100, force=True)
        record = json.loads(path.read_text())
        assert record["run"] == "tpcc/D2M-NS-R"
        assert record["accesses"] == 100
        beat.beat(200)  # inside the interval: not written
        assert json.loads(path.read_text())["accesses"] == 100
        beat.finish(300)  # finish always writes
        assert json.loads(path.read_text())["accesses"] == 300

    def test_trace_id_rides_in_the_payload(self, tmp_path, monkeypatch):
        path = tmp_path / "hb-2.json"
        beat = Heartbeat(str(path), "water/D2M-NS-R", trace="a1b2" * 4)
        beat.beat(10, force=True)
        assert json.loads(path.read_text())["trace"] == "a1b2" * 4
        # untraced runs omit the field entirely
        plain = Heartbeat(str(path), "water/D2M-NS-R")
        plain.beat(10, force=True)
        assert "trace" not in json.loads(path.read_text())
        # from_env threads the id through
        monkeypatch.setenv(PROGRESS_DIR_ENV, str(tmp_path))
        assert Heartbeat.from_env("x", trace="t" * 16).trace == "t" * 16

    def test_read_heartbeats_tolerates_garbage(self, tmp_path):
        (tmp_path / "hb-1.json").write_text('{"run": "a", "accesses": 1}')
        (tmp_path / "hb-2.json").write_text('{"torn')
        (tmp_path / "not-a-beat.txt").write_text("x")
        beats = read_heartbeats(str(tmp_path))
        assert len(beats) == 1
        assert beats[0]["run"] == "a"

    def test_read_heartbeats_missing_directory(self, tmp_path):
        assert read_heartbeats(str(tmp_path / "nope")) == []


class TestStaleHeartbeats:
    def test_pid_alive_probes(self):
        assert _pid_alive(os.getpid())
        assert not _pid_alive(_dead_pid())
        assert not _pid_alive(0)   # never signal process groups
        assert not _pid_alive(-1)
        assert not _pid_alive(2 ** 40)  # out-of-range pids are dead

    def test_live_fresh_heartbeat_is_not_stale(self, tmp_path):
        (tmp_path / "hb-1.json").write_text(json.dumps(
            {"pid": os.getpid(), "run": "a", "ips": 100.0}))
        beats = read_heartbeats(str(tmp_path))
        assert len(beats) == 1
        assert beats[0]["stale"] is False

    def test_dead_pid_marks_stale(self, tmp_path):
        """A worker killed mid-sweep leaves its file behind — flag it."""
        (tmp_path / "hb-9.json").write_text(json.dumps(
            {"pid": _dead_pid(), "run": "tpcc/D2M-FS", "ips": 900.0}))
        beats = read_heartbeats(str(tmp_path))
        assert beats[0]["stale"] is True

    def test_old_mtime_marks_stale_even_with_live_pid(self, tmp_path):
        path = tmp_path / "hb-1.json"
        path.write_text(json.dumps(
            {"pid": os.getpid(), "run": "wedged", "ips": 500.0}))
        old = path.stat().st_mtime - 120
        os.utime(path, (old, old))
        beats = read_heartbeats(str(tmp_path), stale_after_s=30.0)
        assert beats[0]["stale"] is True

    def test_render_shows_stalled_and_excludes_its_rate(self, tmp_path):
        (tmp_path / "hb-1.json").write_text(json.dumps(
            {"pid": os.getpid(), "run": "alive", "ips": 2000.0}))
        (tmp_path / "hb-2.json").write_text(json.dumps(
            {"pid": _dead_pid(), "run": "deadlane", "ips": 9000.0}))
        progress = SweepProgress(total=4, stream=io.StringIO(),
                                 heartbeat_dir=str(tmp_path), inplace=False)
        line = progress.render()
        assert "running alive" in line
        assert "stalled deadlane" in line
        assert "2.0k acc/s" in line  # the dead lane's 9k is not counted

    def test_close_cleans_up_heartbeat_files(self, tmp_path):
        (tmp_path / "hb-1.json").write_text("{}")
        (tmp_path / "hb-2.json").write_text("{}")
        (tmp_path / "progress.jsonl").write_text("")
        progress = SweepProgress(total=1, stream=io.StringIO(),
                                 heartbeat_dir=str(tmp_path), inplace=False)
        progress.close()
        assert not list(tmp_path.glob("hb-*.json"))
        assert (tmp_path / "progress.jsonl").exists()  # only beats removed


class TestSweepProgress:
    def test_per_line_mode_prints_each_completion(self, tmp_path):
        stream = io.StringIO()
        progress = SweepProgress(total=2, stream=stream, inplace=False)
        progress.run_done(1, 2, "tpcc", "Base-2L")
        progress.run_done(2, 2, "tpcc", "D2M-NS-R")
        progress.close()
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[  1/2] tpcc on Base-2L")
        assert lines[1].startswith("[  2/2] tpcc on D2M-NS-R")

    def test_inplace_mode_rewrites_one_line(self, tmp_path):
        stream = io.StringIO()
        progress = SweepProgress(total=2, stream=stream, inplace=True)
        progress.run_done(1, 2, "tpcc", "Base-2L")
        progress.close()
        assert "\r" in stream.getvalue()
        assert stream.getvalue().endswith("\n")

    def test_progress_jsonl_records_lifecycle(self, tmp_path):
        jsonl = tmp_path / "progress.jsonl"
        progress = SweepProgress(total=1, stream=io.StringIO(),
                                 jsonl_path=str(jsonl), inplace=False)
        progress.run_done(1, 1, "tpcc", "D2M-NS-R")
        progress.close()
        events = [json.loads(line)
                  for line in jsonl.read_text().splitlines()]
        assert [e["event"] for e in events] == ["sweep.start", "run.done",
                                                "sweep.end"]
        assert events[1]["workload"] == "tpcc"
        assert events[1]["done"] == 1
        assert all("ts" in e for e in events)

    def test_render_folds_in_heartbeats(self, tmp_path):
        (tmp_path / "hb-1.json").write_text(json.dumps(
            {"run": "tpcc/D2M-NS", "ips": 1500.0, "accesses": 10}))
        progress = SweepProgress(total=4, stream=io.StringIO(),
                                 heartbeat_dir=str(tmp_path), inplace=False)
        progress.done = 1
        line = progress.render()
        assert "[1/4]" in line
        assert "tpcc/D2M-NS" in line
        assert "acc/s" in line

    def test_eta_needs_at_least_one_completion(self):
        progress = SweepProgress(total=3, stream=io.StringIO(),
                                 inplace=False)
        assert progress.eta_s() is None
        progress.done = 1
        assert progress.eta_s() is not None


class TestHeartbeatDirOverride:
    def test_override_wins_over_env(self, tmp_path, monkeypatch):
        from repro.obs.progress import (
            heartbeat_dir_override,
            resolve_heartbeat_dir,
        )

        monkeypatch.setenv(PROGRESS_DIR_ENV, "/env-default")
        assert resolve_heartbeat_dir() == "/env-default"
        with heartbeat_dir_override(str(tmp_path)):
            assert resolve_heartbeat_dir() == str(tmp_path)
            assert Heartbeat.from_env("x") is not None
        assert resolve_heartbeat_dir() == "/env-default"

    def test_none_is_a_no_op(self, monkeypatch):
        from repro.obs.progress import (
            heartbeat_dir_override,
            resolve_heartbeat_dir,
        )

        monkeypatch.delenv(PROGRESS_DIR_ENV, raising=False)
        with heartbeat_dir_override(None):
            assert resolve_heartbeat_dir() == ""

    def test_overrides_nest(self, tmp_path, monkeypatch):
        from repro.obs.progress import (
            heartbeat_dir_override,
            resolve_heartbeat_dir,
        )

        monkeypatch.delenv(PROGRESS_DIR_ENV, raising=False)
        outer, inner = tmp_path / "o", tmp_path / "i"
        with heartbeat_dir_override(str(outer)):
            with heartbeat_dir_override(str(inner)):
                assert resolve_heartbeat_dir() == str(inner)
            assert resolve_heartbeat_dir() == str(outer)

    def test_override_is_thread_local(self, tmp_path):
        import threading

        from repro.obs.progress import (
            heartbeat_dir_override,
            resolve_heartbeat_dir,
        )

        seen = {}

        def _worker():
            seen["worker"] = resolve_heartbeat_dir()

        with heartbeat_dir_override(str(tmp_path)):
            thread = threading.Thread(target=_worker)
            thread.start()
            thread.join()
        assert seen["worker"] == ""  # other threads never see the override


class TestProgressJsonlRotation:
    def _fill(self, path, cap, sweeps=5, runs=40):
        for _ in range(sweeps):
            progress = SweepProgress(total=runs, stream=io.StringIO(),
                                     jsonl_path=str(path), inplace=False,
                                     jsonl_max_bytes=cap)
            with progress:
                for i in range(runs):
                    progress.run_done(i + 1, runs, "tpcc", "D2M-NS-R")

    def test_cap_holds_across_many_sweeps(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        cap = 2048
        self._fill(path, cap)
        # one record may land after the size check, so the live file is
        # bounded by cap + one record; the rotated generation likewise
        assert path.stat().st_size <= cap + 512
        rotated = tmp_path / "progress.jsonl.1"
        assert rotated.exists()
        assert rotated.stat().st_size <= cap + 512
        # exactly one rotated generation is kept
        assert sorted(p.name for p in tmp_path.glob("progress.jsonl*")) == [
            "progress.jsonl", "progress.jsonl.1"]

    def test_rotated_files_stay_parsable(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        self._fill(path, 2048)
        for name in ("progress.jsonl", "progress.jsonl.1"):
            for line in (tmp_path / name).read_text().splitlines():
                assert json.loads(line)["event"]

    def test_zero_cap_disables_rotation(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        self._fill(path, 0, sweeps=3, runs=30)
        assert not (tmp_path / "progress.jsonl.1").exists()

    def test_env_override(self, tmp_path, monkeypatch):
        from repro.obs.progress import (
            PROGRESS_JSONL_MAX_BYTES,
            progress_jsonl_max_bytes,
        )

        monkeypatch.delenv("REPRO_PROGRESS_MAX_BYTES", raising=False)
        assert progress_jsonl_max_bytes() == PROGRESS_JSONL_MAX_BYTES
        monkeypatch.setenv("REPRO_PROGRESS_MAX_BYTES", "123")
        assert progress_jsonl_max_bytes() == 123
        monkeypatch.setenv("REPRO_PROGRESS_MAX_BYTES", "junk")
        assert progress_jsonl_max_bytes() == PROGRESS_JSONL_MAX_BYTES
