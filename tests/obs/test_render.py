"""Tests for the static HTML dashboard renderer."""

from repro.experiments.records import RunRecord
from repro.obs.compare import compare_bench, compare_records
from repro.obs.render import (
    delta_table,
    digest_panels,
    esc,
    profile_panel,
    render_dashboard,
    speedup_color,
    speedup_matrix,
    svg_digest_bars,
    svg_heatmap,
    svg_pair_bars,
    svg_profile_bars,
)

HISTS = {
    "latency.L1": {"count": 900.0, "mean": 2.0, "max": 7.0,
                   "p50": 1.0, "p90": 3.0, "p99": 7.0},
    "latency.MEM": {"count": 40.0, "mean": 210.0, "max": 511.0,
                    "p50": 255.0, "p90": 511.0, "p99": 511.0},
    "noc.hops": {"count": 300.0, "mean": 1.1, "max": 3.0,
                 "p50": 1.0, "p90": 1.0, "p99": 3.0},
    "mshr.residency": {"count": 0.0},
    "unknown.family": {"count": 5.0, "mean": 1.0, "max": 1.0,
                       "p50": 1.0, "p90": 1.0, "p99": 1.0},
}


def make_record(config, cycles, hists=None):
    return RunRecord("water", "sa", config, 1000, cycles=cycles,
                     hists=dict(hists if hists is not None else HISTS))


def make_matrix():
    return {"water": {"Base-2L": make_record("Base-2L", 20_000.0),
                      "D2M-NS-R": make_record("D2M-NS-R", 10_000.0)}}


class TestSpeedups:
    def test_speedup_matrix_is_cycles_ratio(self):
        values = speedup_matrix(make_matrix(), "Base-2L")
        assert values[("water", "Base-2L")] == 1.0
        assert values[("water", "D2M-NS-R")] == 2.0

    def test_zero_cycles_yield_none(self):
        matrix = {"water": {"Base-2L": make_record("Base-2L", 0.0),
                            "D2M-NS-R": make_record("D2M-NS-R", 100.0)}}
        values = speedup_matrix(matrix, "Base-2L")
        assert values[("water", "D2M-NS-R")] is None

    def test_diverging_color_poles(self):
        neutral = speedup_color(1.0)
        assert speedup_color(1.3) != neutral
        assert speedup_color(0.85) != neutral
        assert speedup_color(1.3) != speedup_color(0.85)
        # extreme values clamp instead of overflowing the hex channels
        assert speedup_color(50.0) == speedup_color(1.3)

    def test_heatmap_labels_every_cell(self):
        values = speedup_matrix(make_matrix(), "Base-2L")
        svg = svg_heatmap(["water"], ["Base-2L", "D2M-NS-R"], values,
                          "Base-2L")
        assert svg.startswith("<svg")
        assert "1.00x" in svg and "2.00x" in svg
        assert "water" in svg and "D2M-NS-R" in svg

    def test_heatmap_missing_cell_renders_blank(self):
        svg = svg_heatmap(["water"], ["Base-2L"], {}, "Base-2L")
        assert "var(--surface-2)" in svg
        assert "x</text>" not in svg


class TestDigestCharts:
    def test_bars_carry_value_labels_and_tooltips(self):
        svg = svg_digest_bars("latency.MEM", HISTS["latency.MEM"], 511.0)
        for label in ("p50", "p90", "p99", "max"):
            assert label in svg
        assert "511" in svg
        assert "<title>" in svg
        assert "count 40" in svg

    def test_panels_group_by_family_and_skip_empty(self):
        html = digest_panels(HISTS)
        assert "Access latency by service level" in html
        assert "NoC hop distribution" in html
        assert "latency.L1" in html and "latency.MEM" in html
        # empty member and unknown family are both excluded
        assert "mshr.residency" not in html
        assert "unknown.family" not in html

    def test_no_panels_for_all_empty(self):
        assert digest_panels({"latency.L1": {"count": 0.0}}) == ""


PROFILE = {
    "driver": "batched", "wall_s": 2.0, "fast_s": 1.2, "slow_s": 0.8,
    "chunks": 8, "slow_accesses": 1200,
    "classes": {"d2m.D1": {"s": 0.5, "n": 700},
                "d2m.B": {"s": 0.3, "n": 500}},
    "hists": {},
}


class TestProfilePanel:
    def test_ranked_bars_most_expensive_first(self):
        html = profile_panel(PROFILE)
        assert "Slow-tail attribution" in html
        assert "1200" in html and "8 chunks" in html
        # ranking order shows in the SVG row order
        assert html.index("d2m.D1") < html.index("d2m.B")
        assert "0.5000s over 700 fallback accesses" in html

    def test_empty_profile_renders_nothing(self):
        assert profile_panel({}) == ""
        assert profile_panel("nope") == ""

    def test_profile_without_slow_accesses_says_so(self):
        quiet = dict(PROFILE, classes={}, slow_accesses=0, slow_s=0.0)
        html = profile_panel(quiet)
        assert "no slow-tail accesses" in html

    def test_display_limit_reports_hidden_rows(self):
        wide = dict(PROFILE)
        wide["classes"] = {f"d2m.T{i}": {"s": 0.1, "n": 1}
                           for i in range(20)}
        html = profile_panel(wide, limit=5)
        assert "15 more" in html

    def test_bars_scale_to_the_largest_class(self):
        rows = [("d2m.D1", 0.5, 700), ("d2m.B", 0.25, 500)]
        svg = svg_profile_bars(rows)
        assert 'aria-label="slow-tail attribution"' in svg
        assert svg.count("<rect") == 2

    def test_dashboard_includes_the_panel_for_profiled_focus(self):
        matrix = make_matrix()
        matrix["water"]["D2M-NS-R"].profile.update(PROFILE)
        html = render_dashboard(matrix, focus=("water", "D2M-NS-R"))
        assert "Slow-tail attribution" in html
        assert "d2m.D1" in html

    def test_dashboard_omits_the_panel_without_a_profile(self):
        html = render_dashboard(make_matrix(), focus=("water", "D2M-NS-R"))
        assert "Slow-tail attribution" not in html


class TestComparisonViews:
    def _report(self):
        return compare_records(
            make_record("Base-2L", 20_000.0),
            make_record("D2M-NS-R", 10_000.0,
                        hists={"latency.L1": {"count": 900.0, "mean": 1.0,
                                              "max": 3.0, "p50": 1.0,
                                              "p90": 1.0, "p99": 3.0}}),
            informational=True)

    def test_delta_table_severity_classes(self):
        html = delta_table(self._report())
        assert 'class="deltas"' in html
        assert 'class="sev note"' in html
        assert "cycles" in html

    def test_delta_table_truncates(self):
        html = delta_table(self._report(), include_ok=True, limit=3)
        assert "more below this table" in html

    def test_pair_bars_draw_both_series(self):
        svg = svg_pair_bars([("L1", 7.0, 3.0)], "old", "new")
        assert svg.count("var(--series-1)") == 1
        assert svg.count("var(--series-2)") == 1
        assert "old" in svg and "new" in svg


class TestRenderDashboard:
    def test_self_contained_document(self):
        matrix = make_matrix()
        comparison = compare_records(matrix["water"]["Base-2L"],
                                     matrix["water"]["D2M-NS-R"],
                                     informational=True)
        html = render_dashboard(matrix, focus=("water", "D2M-NS-R"),
                                comparisons=[("Side by side", comparison)])
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert "<style>" in html  # all styling is inline
        assert "Speedup over Base-2L" in html
        assert "latency.L1" in html
        assert "Side by side" in html

    def test_bench_comparison_section(self):
        bench = {"schema": 1, "mode": "full", "matrix": {},
                 "env": {}, "geomean_ips": 100.0,
                 "cells": [{"config": "Base-2L", "workload": "tpcc",
                            "ips": 100.0, "phases_s": {}}],
                 "equivalence_checked": False, "equivalence_ok": True}
        report = compare_bench(bench, bench)
        html = render_dashboard(make_matrix(), focus=("water", "D2M-NS-R"),
                                comparisons=[("Bench vs baseline", report)])
        assert "Bench vs baseline" in html
        assert "no deltas beyond thresholds" in html

    def test_focus_without_telemetry_explains(self):
        matrix = {"water": {"Base-2L": make_record("Base-2L", 100.0,
                                                   hists={})}}
        html = render_dashboard(matrix, focus=("water", "Base-2L"))
        assert "no telemetry digests" in html

    def test_escapes_untrusted_names(self):
        record = make_record("<Evil&Co>", 100.0)
        matrix = {"water": {"<Evil&Co>": record}}
        html = render_dashboard(matrix, focus=("water", "<Evil&Co>"),
                                baseline_config="<Evil&Co>")
        assert "<Evil&Co>" not in html
        assert "&lt;Evil&amp;Co&gt;" in html

    def test_esc(self):
        assert esc('<a "b">') == "&lt;a &quot;b&quot;&gt;"
