"""Unit tests for structured JSONL run logging."""

import json

from repro.obs import runlog
from repro.obs.runlog import LOG_ENV, RunLogger


class TestRunLogger:
    def test_writes_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "run.log"
        logger = RunLogger.open(str(path))
        logger.log("run.start", workload="tpcc", seed=1)
        logger.log("run.end", accesses=100)
        logger.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["run.start", "run.end"]
        assert records[0]["workload"] == "tpcc"
        assert all("ts" in r and "pid" in r for r in records)

    def test_appends_across_openings(self, tmp_path):
        path = tmp_path / "run.log"
        for i in range(2):
            logger = RunLogger.open(str(path))
            logger.log("ping", i=i)
            logger.close()
        assert len(path.read_text().splitlines()) == 2

    def test_dash_targets_stderr(self, capsys):
        logger = RunLogger.open("-")
        logger.log("hello")
        record = json.loads(capsys.readouterr().err)
        assert record["event"] == "hello"

    def test_non_serializable_field_falls_back_to_str(self, tmp_path):
        path = tmp_path / "run.log"
        logger = RunLogger.open(str(path))
        logger.log("odd", value=object())
        logger.close()
        record = json.loads(path.read_text())
        assert "object" in record["value"]


class TestModuleGlobals:
    def test_emit_is_noop_when_unconfigured(self, monkeypatch):
        monkeypatch.delenv(LOG_ENV, raising=False)
        runlog.configure("")
        runlog.emit("ignored", x=1)  # must not raise or print

    def test_configure_then_emit(self, tmp_path):
        path = tmp_path / "run.log"
        runlog.configure(str(path))
        try:
            runlog.emit("configured", x=1)
        finally:
            runlog.configure("")
        assert json.loads(path.read_text())["event"] == "configured"

    def test_env_configures_lazily(self, tmp_path, monkeypatch):
        path = tmp_path / "env.log"
        monkeypatch.setenv(LOG_ENV, str(path))
        runlog.configure("")  # reset any prior global
        runlog._logger = runlog._UNSET  # force re-read of the env
        try:
            runlog.emit("from-env")
        finally:
            runlog.configure("")
        assert json.loads(path.read_text())["event"] == "from-env"

    def test_warn_reaches_stderr_and_log(self, tmp_path, capsys):
        path = tmp_path / "run.log"
        runlog.configure(str(path))
        try:
            runlog.warn("careful now", context="test")
        finally:
            runlog.configure("")
        assert "careful now" in capsys.readouterr().err
        record = json.loads(path.read_text())
        assert record["event"] == "warning"
        assert record["message"] == "careful now"
