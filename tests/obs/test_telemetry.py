"""Tests for histogram telemetry: wiring, non-perturbation, dwell logic."""

import pytest

from repro.common.params import base_2l, d2m_ns_r
from repro.common.types import HitLevel
from repro.obs.telemetry import Telemetry
from repro.sim.runner import run_workload


class TestTelemetryRun:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_workload(d2m_ns_r(), "tpcc", instructions=2500, seed=1,
                            telemetry=True)

    def test_latency_histograms_populated(self, outcome):
        hists = outcome.hist_summaries()
        assert f"latency.{HitLevel.L1.value}" in hists
        # recorded latency counts sum to the ROI access count
        latency_total = sum(d["count"] for name, d in hists.items()
                            if name.startswith("latency."))
        assert latency_total == outcome.result.accesses

    def test_expected_histogram_families(self, outcome):
        hists = outcome.hist_summaries()
        assert "mshr.residency" in hists
        assert "noc.hops" in hists
        assert "md1.occupancy" in hists
        assert "md2.occupancy" in hists
        assert any(name.startswith("dwell.") for name in hists)

    def test_occupancy_is_percentage(self, outcome):
        hists = outcome.hist_summaries()
        assert 0 <= hists["md1.occupancy"]["max"] <= 100

    def test_spec_records_telemetry_provenance(self, outcome):
        assert outcome.spec.telemetry is True
        assert outcome.telemetry is not None

    def test_statistics_are_unperturbed(self):
        plain = run_workload(d2m_ns_r(), "tpcc", instructions=2500, seed=1,
                             telemetry=False)
        metered = run_workload(d2m_ns_r(), "tpcc", instructions=2500, seed=1,
                               telemetry=True)
        assert plain.result.accesses == metered.result.accesses
        assert plain.perf.cycles == metered.perf.cycles
        assert (plain.hierarchy.stats.counters()
                == metered.hierarchy.stats.counters())

    def test_baseline_gets_noc_but_no_protocol_hists(self):
        outcome = run_workload(base_2l(), "tpcc", instructions=2500, seed=1,
                               telemetry=True)
        hists = outcome.hist_summaries()
        assert "noc.hops" in hists
        assert "md1.occupancy" not in hists
        assert not any(name.startswith("dwell.") for name in hists)

    def test_off_by_default(self):
        outcome = run_workload(d2m_ns_r(), "tpcc", instructions=1500, seed=1)
        assert outcome.telemetry is None
        assert outcome.hist_summaries() == {}


class TestDwellMirror:
    def test_pb_events_drive_dwell_classes(self):
        tele = Telemetry()
        tele.accesses = 0
        tele.emit("md3.fill", region=7)          # untracked from access 0
        tele.accesses = 10
        tele.emit("md3.pb_add", region=7)        # private from access 10
        tele.accesses = 30
        tele.emit("md3.pb_add", region=7)        # shared from access 30
        tele.accesses = 70
        tele.emit("md3.drop", region=7)          # closes the shared dwell
        summaries = tele.hists.summaries()
        assert summaries["dwell.untracked"]["count"] == 1
        assert summaries["dwell.private"]["count"] == 1
        assert summaries["dwell.shared"]["count"] == 1
        assert summaries["dwell.shared"]["max"] == 40  # accesses 30..70

    def test_pb_clear_back_to_private_then_finalize_flushes(self):
        tele = Telemetry()
        tele.emit("md3.pb_add", region=1)
        tele.emit("md3.pb_add", region=1)
        tele.accesses = 50
        tele.emit("md3.pb_clear", region=1)      # shared -> private
        tele.accesses = 80
        tele.finalize()                          # flushes the open dwell
        summaries = tele.hists.summaries()
        assert summaries["dwell.shared"]["count"] == 1
        assert summaries["dwell.private"]["count"] == 1

    def test_events_without_region_are_ignored(self):
        tele = Telemetry()
        tele.emit("md3.pb_add")
        tele.emit("noc.msg", region=3)
        tele.finalize()
        assert tele.hists.summaries() == {}


class TestSampling:
    def test_tick_drives_heartbeat(self):
        class FakeBeat:
            def __init__(self):
                self.beats = []

            def beat(self, accesses, force=False):
                self.beats.append(accesses)

            def finish(self, accesses):
                self.beats.append(-accesses)

        beat = FakeBeat()
        tele = Telemetry(sample_every=10, heartbeat=beat)
        for _ in range(25):
            tele.tick()
        tele.finalize()
        assert beat.beats == [10, 20, -25]
