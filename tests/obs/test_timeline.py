"""Epoch time-series telemetry: sampler contracts, driver parity, drift.

The two load-bearing guarantees under test:

* attaching a :class:`TimelineSampler` never perturbs the simulation —
  stats are bit-identical with sampling on or off, in both drivers;
* the scalar loop and the batched fast path emit *identical* epoch
  series (the batched driver aligns its chunks to the epoch length and
  flushes deferred aggregates before each snapshot).
"""

import json

import pytest

from repro.common.params import all_configs
from repro.core.hierarchy import build_hierarchy
from repro.obs.compare import (
    NOTE,
    OK,
    REGRESSION,
    WARN,
    compare_records,
    compare_timelines,
)
from repro.obs.timeline import (
    MAX_EPOCHS,
    TIMELINE_SERIES,
    TimelineSampler,
    TimelineStreamWriter,
    phase_drift,
    rebucket_timeline,
    timeline_text,
    validate_timeline,
)
from repro.sim.bench import BENCH_CONFIGS, BENCH_WORKLOADS, result_snapshot
from repro.sim.perf import PerfModel
from repro.sim.simulator import Simulator
from repro.workloads.registry import make_workload


def _config(name):
    return {c.name: c for c in all_configs()}[name]


def _simulate(config, workload_name, batched, *, epoch=0, instructions=900,
              warmup=300, seed=3):
    """One small run; returns (stats snapshot, timeline summary)."""
    hierarchy = build_hierarchy(config)
    sampler = TimelineSampler(epoch=epoch) if epoch else None
    simulator = Simulator(hierarchy, timeline=sampler)
    workload = make_workload(workload_name, config.nodes, hierarchy.amap,
                             seed=seed)
    result = simulator.run(workload, instructions, seed=seed, warmup=warmup,
                           batched=batched)
    perf = PerfModel(config.ooo).summarize(result)
    snap = result_snapshot(result, perf.cycles)
    return snap, (sampler.summary() if sampler is not None else {})


def make_timeline(series_values, epoch_accesses=64, roi_epoch=0):
    """A minimal valid summary: every series cloned from one shape."""
    epochs = len(series_values)
    return {"epochs": epochs, "epoch_accesses": epoch_accesses,
            "roi_epoch": roi_epoch,
            "series": {name: list(series_values)
                       for name in TIMELINE_SERIES}}


class TestSamplerContract:
    def test_unsampled_summary_is_the_empty_contract(self):
        assert TimelineSampler(epoch=64).summary() == {"epochs": 0}

    def test_unbound_snapshots_build_a_valid_summary(self):
        sampler = TimelineSampler(epoch=64)
        sampler.snapshot(100, 64)
        sampler.snapshot(250, 128)
        summary = sampler.summary()
        assert summary["epochs"] == 2
        assert summary["epoch_accesses"] == 64
        assert summary["series"]["instructions"] == [100, 150]
        assert summary["series"]["accesses"] == [64, 64]
        assert validate_timeline(summary) == []

    def test_mark_roi_pins_the_boundary_and_rebaselines(self):
        sampler = TimelineSampler(epoch=64)
        sampler.snapshot(100, 64)
        sampler.mark_roi()  # counters reset to zero at the ROI boundary
        sampler.snapshot(40, 64)
        summary = sampler.summary()
        assert summary["roi_epoch"] == 1
        # post-ROI delta reads against a zero baseline, not the warmup
        assert summary["series"]["instructions"] == [100, 40]

    def test_pair_merge_caps_storage_and_doubles_the_epoch(self):
        sampler = TimelineSampler(epoch=8)
        for i in range(MAX_EPOCHS + 1):
            sampler.snapshot((i + 1) * 10, (i + 1) * 8)
        summary = sampler.summary()
        assert summary["epochs"] == (MAX_EPOCHS + 1 + 1) // 2
        assert summary["epoch_accesses"] == 16
        # delta series merge by sum: total mass is conserved
        assert sum(summary["series"]["instructions"]) == (MAX_EPOCHS + 1) * 10
        assert validate_timeline(summary) == []

    def test_finalize_flushes_only_partial_epochs(self):
        sampler = TimelineSampler(epoch=64)
        sampler.snapshot(100, 64)
        sampler.finalize(100, 64, partial=False)
        assert sampler.summary()["epochs"] == 1
        sampler.finalize(130, 90, partial=True)
        assert sampler.summary()["epochs"] == 2

    def test_stream_writer_appends_jsonl_rows(self, tmp_path):
        path = tmp_path / "tl-1.jsonl"
        writer = TimelineStreamWriter(str(path))
        sampler = TimelineSampler(epoch=64, on_epoch=writer)
        sampler.snapshot(100, 64)
        sampler.snapshot(250, 128)
        writer.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["epoch"] for row in rows] == [0, 1]
        assert rows[1]["instructions"] == 150

    def test_stream_failures_never_raise(self):
        writer = TimelineStreamWriter("/no/such/dir/tl.jsonl")
        writer(0, {"instructions": 1})  # swallowed OSError
        writer.close()


class TestValidateTimeline:
    def test_off_and_empty_contracts(self):
        assert validate_timeline({}) == []
        assert validate_timeline({"epochs": 0}) == []
        assert validate_timeline({"epochs": 0, "series": {}}) \
            == ["empty timeline carries extra keys: series"]

    def test_non_mapping_and_bad_epochs(self):
        assert validate_timeline([1, 2]) \
            == ["timeline is list, not a mapping"]
        assert validate_timeline({"epochs": "3"}) \
            == ["epochs is str, not an int"]
        assert validate_timeline({"epochs": True}) \
            == ["epochs is bool, not an int"]
        assert validate_timeline({"epochs": -1}) \
            == ["epochs is negative (-1)"]

    def test_series_shape_is_enforced(self):
        good = make_timeline([1, 2, 3])
        assert validate_timeline(good) == []
        short = make_timeline([1, 2, 3])
        short["series"]["noc_hops"] = [1]
        assert any("expected 3" in p for p in validate_timeline(short))
        alien = make_timeline([1, 2, 3])
        alien["series"]["warp_drive"] = [0, 0, 0]
        assert any("unknown series" in p for p in validate_timeline(alien))
        floats = make_timeline([1, 2, 3])
        floats["series"]["accesses"] = [1.5, 2, 3]
        assert any("non-int" in p for p in validate_timeline(floats))

    def test_roi_and_unknown_keys(self):
        late = make_timeline([1, 2], roi_epoch=5)
        assert any("beyond epochs" in p for p in validate_timeline(late))
        extra = make_timeline([1, 2])
        extra["color"] = "red"
        assert any("unknown timeline keys" in p
                   for p in validate_timeline(extra))
        capped = make_timeline([1, 2])
        capped["md1_capacity"] = 64
        capped["md2_capacity"] = 128
        assert validate_timeline(capped) == []


class TestPhaseDrift:
    def test_identical_shapes_drift_zero(self):
        assert phase_drift([5, 5, 5, 5], [5, 5, 5, 5]) == 0.0
        # equal shape, scaled totals: still zero (totals cancel)
        assert phase_drift([1, 2, 3], [10, 20, 30]) == pytest.approx(0.0)

    def test_disjoint_phases_drift_to_one(self):
        assert phase_drift([10, 0, 0, 0], [0, 0, 0, 10]) \
            == pytest.approx(1.0)

    def test_same_totals_different_phase_scores_high(self):
        early = [8, 2, 0, 0]
        late = [0, 0, 2, 8]
        assert sum(early) == sum(late)
        assert phase_drift(early, late) > 0.5

    def test_degenerate_inputs_drift_zero(self):
        assert phase_drift([], [1, 2]) == 0.0
        assert phase_drift([0, 0], [1, 2]) == 0.0
        assert phase_drift([1, 2], [0, 0]) == 0.0

    def test_truncates_to_common_length(self):
        assert phase_drift([1, 1, 1, 1, 99], [1, 1, 1, 1]) == 0.0


class TestRebucket:
    def test_coarsens_to_the_requested_epoch(self):
        timeline = make_timeline([1, 2, 3, 4], epoch_accesses=64,
                                 roi_epoch=2)
        out = rebucket_timeline(timeline, 256)
        assert out["epochs"] == 1
        assert out["epoch_accesses"] == 256
        assert out["roi_epoch"] == 0
        assert out["series"]["instructions"] == [10]
        # instantaneous gauges keep the peak, not the sum
        assert out["series"]["md1_occ"] == [4]
        # the input is untouched (display-side copy)
        assert timeline["epochs"] == 4

    def test_noop_at_or_beyond_target(self):
        timeline = make_timeline([1, 2], epoch_accesses=512)
        assert rebucket_timeline(timeline, 512) == timeline
        assert rebucket_timeline({"epochs": 0}, 512) == {"epochs": 0}


class TestTimelineText:
    def test_renders_sparklines_with_roi(self):
        text = timeline_text(make_timeline([1, 2, 3, 4], roi_epoch=2))
        assert "4 epochs x 64 accesses" in text
        assert "ROI at epoch 2" in text
        assert "instructions" in text and "md1_occ" in text

    def test_empty_timeline_says_so(self):
        assert timeline_text({"epochs": 0}) == "timeline: no epochs sampled"
        assert timeline_text({}) == "timeline: no epochs sampled"


class TestDriverParity:
    """The acceptance gate: scalar and batched series are identical."""

    @pytest.mark.parametrize("config_name", BENCH_CONFIGS)
    @pytest.mark.parametrize("workload_name", BENCH_WORKLOADS)
    def test_identical_epoch_series(self, config_name, workload_name):
        config = _config(config_name)
        scalar_snap, scalar_tl = _simulate(config, workload_name, False,
                                           epoch=64)
        batched_snap, batched_tl = _simulate(config, workload_name, True,
                                             epoch=64)
        assert scalar_tl == batched_tl
        assert scalar_snap == batched_snap
        assert scalar_tl["epochs"] > 1
        assert validate_timeline(scalar_tl) == []

    @pytest.mark.parametrize("batched", [False, True])
    def test_sampling_never_perturbs_the_stats(self, batched):
        # bit-identity with the sampler on vs off, per driver
        config = _config("D2M-NS-R")
        plain, _ = _simulate(config, "mix1", batched, epoch=0)
        sampled, timeline = _simulate(config, "mix1", batched, epoch=64)
        assert sampled == plain
        assert timeline["epochs"] > 1

    def test_roi_epoch_matches_the_warmup_boundary(self):
        config = _config("D2M-FS")
        _, timeline = _simulate(config, "tpcc", True, epoch=64,
                                instructions=900, warmup=300)
        assert 0 < timeline["roi_epoch"] < timeline["epochs"]
        _, cold = _simulate(config, "tpcc", True, epoch=64, warmup=0)
        assert cold["roi_epoch"] == 0


class TestCompareTimelines:
    def test_both_off_is_silent(self):
        assert compare_timelines({}, {"epochs": 0}) == ([], [])

    def test_one_sided_timeline_is_a_note(self):
        deltas, notes = compare_timelines({}, make_timeline([1, 2]))
        assert [d.severity for d in deltas] == [NOTE]
        assert deltas[0].key == "timeline.epochs"
        assert "candidate" in deltas[0].note

    def test_epoch_length_mismatch_skips_the_measure(self):
        deltas, notes = compare_timelines(
            make_timeline([1, 2], epoch_accesses=64),
            make_timeline([1, 2], epoch_accesses=128))
        assert deltas == []
        assert any("phase drift not measured" in n for n in notes)

    def test_identical_series_produce_no_deltas(self):
        timeline = make_timeline([1, 2, 3])
        deltas, notes = compare_timelines(timeline, make_timeline([1, 2, 3]))
        assert deltas == [] and notes == []

    def test_same_totals_different_phase_is_a_regression(self):
        early = make_timeline([8, 2, 0, 0])
        late = make_timeline([0, 0, 2, 8])
        deltas, _ = compare_timelines(early, late)
        drifted = {d.key: d for d in deltas}
        key = "timeline.instructions.phase_drift"
        assert drifted[key].severity == REGRESSION
        # the sums ride along so "same totals" is visible at a glance
        assert drifted[key].baseline == drifted[key].candidate == 10.0
        assert "KS distance" in drifted[key].note

    def test_cap_limits_the_severity(self):
        deltas, _ = compare_timelines(make_timeline([8, 2, 0, 0]),
                                      make_timeline([0, 0, 2, 8]), cap=NOTE)
        assert {d.severity for d in deltas} == {NOTE}

    def test_roi_shift_is_noted(self):
        _, notes = compare_timelines(make_timeline([1, 2], roi_epoch=0),
                                     make_timeline([1, 2], roi_epoch=1))
        assert any("ROI boundary moved" in n for n in notes)


class TestCompareRecordsDrift:
    """Same scalar totals, shifted phases -> the report flags drift."""

    def _record(self, shape):
        from repro.experiments.records import RunRecord
        record = RunRecord("water", "sa", "D2M-NS-R", 1000, cycles=10_000.0,
                           msgs_per_ki=50.0, edp=3.0e8)
        record.timeline = make_timeline(shape)
        return record

    def test_phase_drift_surfaces_in_record_reports(self):
        report = compare_records(self._record([8, 2, 0, 0]),
                                 self._record([0, 0, 2, 8]))
        drift = [d for d in report.deltas
                 if d.key.endswith(".phase_drift")]
        assert drift and report.worst == REGRESSION
        # every scalar metric is identical: only the timeline complains
        scalar = [d for d in report.deltas
                  if not d.key.startswith(("timeline.", "hist."))]
        assert all(d.severity == OK for d in scalar)

    def test_informational_mode_caps_at_note(self):
        report = compare_records(self._record([8, 2, 0, 0]),
                                 self._record([0, 0, 2, 8]),
                                 informational=True)
        assert report.worst == NOTE


class TestRenderPanels:
    def _timeline(self):
        _, timeline = _simulate(_config("D2M-NS-R"), "mix1", True, epoch=64)
        return timeline

    def test_dashboard_panels_cover_ips_and_md_occupancy(self):
        from repro.obs.render import timeline_panels
        html = timeline_panels(self._timeline())
        assert "Phase timeline" in html
        assert "Instructions retired" in html
        assert "MD1/MD2 occupancy" in html
        assert html.count("<svg") >= 2

    def test_roi_rule_is_drawn_when_inside_the_run(self):
        from repro.obs.render import svg_timeline
        svg = svg_timeline([("instructions", [1, 2, 3, 4])], roi_epoch=2)
        assert "stroke-dasharray" in svg
        flat = svg_timeline([("instructions", [1, 2, 3, 4])], roi_epoch=0)
        assert "stroke-dasharray" not in flat

    def test_degenerate_timelines_render_gracefully(self):
        from repro.obs.render import svg_timeline, timeline_panels
        assert svg_timeline([("instructions", [5])], roi_epoch=0) == ""
        assert timeline_panels({}) == ""
        assert "single epoch" in timeline_panels(
            make_timeline([7])).lower() or timeline_panels(
            make_timeline([7])) != ""

    def test_standalone_page_is_a_document(self):
        from repro.obs.render import timeline_page
        page = timeline_page(self._timeline())
        assert page.startswith("<!DOCTYPE html>")
        assert "Phase timeline" in page
