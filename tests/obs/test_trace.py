"""Unit tests for trace capture, export formats, and tracer fanout."""

import io
import json

from repro.common.params import base_2l, d2m_ns_r
from repro.core.hierarchy import build_hierarchy
from repro.obs.trace import (
    MD3_TRACK,
    TraceRecorder,
    TracerFanout,
    attach_tracer,
    validate_trace_record,
)
from repro.sim.runner import run_workload


class _CountingTracer:
    def __init__(self):
        self.begins = 0
        self.emits = 0
        self.ends = 0

    def begin_access(self, node, line, region, idx, detail=""):
        self.begins += 1

    def emit(self, kind, node=None, line=None, region=None, idx=None,
             detail=""):
        self.emits += 1

    def end_access(self):
        self.ends += 1


class TestTracerFanout:
    def test_dispatches_to_all(self):
        a, b = _CountingTracer(), _CountingTracer()
        fan = TracerFanout([a, b])
        fan.begin_access(0, 1, 2, 3)
        fan.emit("x")
        fan.end_access()
        for tracer in (a, b):
            assert (tracer.begins, tracer.emits, tracer.ends) == (1, 1, 1)

    def test_attach_composes_with_existing_tracer(self):
        hierarchy = build_hierarchy(d2m_ns_r())
        first, second = _CountingTracer(), _CountingTracer()
        assert attach_tracer(hierarchy, first)
        assert attach_tracer(hierarchy, second)
        hierarchy.protocol.tracer.emit("test")
        assert first.emits == 1
        assert second.emits == 1

    def test_attach_refuses_baselines(self):
        hierarchy = build_hierarchy(base_2l())
        assert attach_tracer(hierarchy, _CountingTracer()) is False


class TestTraceRecorder:
    def _traced_run(self, window=0, instructions=1500):
        recorder = TraceRecorder(window=window)
        run_workload(d2m_ns_r(), "water", instructions=instructions,
                     seed=1, tracer=recorder)
        return recorder

    def test_records_events_with_access_time_axis(self):
        recorder = self._traced_run()
        assert recorder.recorded > 0
        times = [t for t, _event in recorder.events()]
        assert times == sorted(times)
        assert times[-1] >= 1

    def test_window_keeps_only_the_tail(self):
        recorder = self._traced_run(window=100)
        assert recorder.recorded > 100
        assert len(recorder) == 100
        # the ring holds the newest events
        assert recorder.events()[-1][1].seq == recorder.recorded - 1

    def test_jsonl_export_is_schema_valid(self):
        recorder = self._traced_run()
        buffer = io.StringIO()
        count = recorder.write_jsonl(buffer)
        lines = buffer.getvalue().splitlines()
        assert count == len(lines) == len(recorder)
        for line in lines:
            assert validate_trace_record(json.loads(line)) is None

    def test_chrome_export_shape(self):
        recorder = self._traced_run(window=400)
        buffer = io.StringIO()
        recorder.write_chrome(buffer)
        doc = json.loads(buffer.getvalue())
        events = doc["traceEvents"]
        assert events
        phases = {event["ph"] for event in events}
        assert "M" in phases  # track name metadata
        assert "X" in phases  # slices
        # every event names a process and sits on a track
        assert all("pid" in event for event in events)
        names = [event["args"]["name"] for event in events
                 if event["name"] == "thread_name"]
        assert "MD3" in names
        # MD3-mediated transfers carry flow arrows
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes)
        if starts:
            assert all(e["tid"] == MD3_TRACK for e in finishes)


class TestChromeExportMultiNode:
    """Flow-arrow and schema guarantees on a multi-node traced sweep."""

    def _multi_node_trace(self):
        config = d2m_ns_r()
        assert config.nodes > 1  # the guarantee under test is cross-node
        recorder = TraceRecorder(window=600)
        run_workload(config, "water", instructions=2500, seed=1,
                     tracer=recorder)
        return recorder

    def test_flow_arrows_reference_registered_tracks(self):
        recorder = self._multi_node_trace()
        events = recorder.chrome_events()
        tracks = {event["tid"] for event in events
                  if event.get("ph") == "M"
                  and event.get("name") == "thread_name"}
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert starts, "multi-node run produced no MD3-mediated transfers"
        for arrow in starts + finishes:
            assert arrow["tid"] in tracks
        # arrows pair up by flow id: one start, one finish, finish on MD3
        by_id = {}
        for arrow in starts + finishes:
            by_id.setdefault(arrow["id"], []).append(arrow["ph"])
        assert all(sorted(phases) == ["f", "s"]
                   for phases in by_id.values())
        assert all(e["tid"] == MD3_TRACK for e in finishes)
        # transfers start on more than one node's own track
        assert len({e["tid"] for e in starts}) > 1

    def test_every_windowed_event_is_schema_valid(self):
        recorder = self._multi_node_trace()
        pairs = recorder.events()
        assert 0 < len(pairs) <= 600
        for access_index, event in pairs:
            record = recorder.event_record(access_index, event)
            assert validate_trace_record(record) is None


class TestValidateTraceRecord:
    def test_valid_record(self):
        assert validate_trace_record(
            {"seq": 0, "t": 1, "kind": "access", "node": 0}) is None

    def test_missing_required_field(self):
        assert "seq" in validate_trace_record({"t": 1, "kind": "x"})

    def test_wrong_type(self):
        assert "kind" in validate_trace_record(
            {"seq": 0, "t": 0, "kind": 3})

    def test_bool_is_not_an_int(self):
        assert "node" in validate_trace_record(
            {"seq": 0, "t": 0, "kind": "x", "node": True})

    def test_optional_trace_correlation_id(self):
        assert validate_trace_record(
            {"seq": 0, "t": 1, "kind": "access", "trace": "a" * 16}) is None
        assert "trace" in validate_trace_record(
            {"seq": 0, "t": 1, "kind": "access", "trace": 42})

    def test_unknown_field(self):
        assert "bogus" in validate_trace_record(
            {"seq": 0, "t": 0, "kind": "x", "bogus": 1})

    def test_negative_seq(self):
        assert validate_trace_record(
            {"seq": -1, "t": 0, "kind": "x"}) is not None

    def test_non_object(self):
        assert validate_trace_record([1, 2]) is not None
