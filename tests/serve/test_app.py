"""End-to-end daemon tests: real sockets, real simulations, real queue.

A :class:`Daemon` helper runs :class:`~repro.serve.app.ServeApp` on a
background event-loop thread so the test thread can drive it with plain
``urllib`` — including genuinely concurrent submissions from multiple
client threads (the coalescing test depends on that).
"""

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.app import ServeApp
from repro.serve.schema import classify_payload, validate_payload

#: a deliberately tiny matrix so every test daemon simulates in well
#: under a second per cell
MATRIX = {"workloads": ["water"], "configs": ["Base-2L"],
          "instructions": 800, "seed": 5}

DEADLINE_S = 60.0


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_FRESH", raising=False)
    monkeypatch.delenv("REPRO_WARMUP", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    return tmp_path


class Daemon:
    """ServeApp on its own event-loop thread, driven over HTTP."""

    def __init__(self, cache_root, workers=1, job_concurrency=2,
                 drain=True):
        self.app = ServeApp(cache_root=cache_root, workers=workers,
                            job_concurrency=job_concurrency)
        self.drain = drain
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       daemon=True)

    def __enter__(self):
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.app.start(port=0, drain=self.drain),
            self.loop).result(timeout=30)
        return self

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(self.app.stop(),
                                         self.loop).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()

    # ------------------------------------------------------------- client

    def http(self, method, path, body=None, headers=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.app.port}{path}", data=data,
            method=method, headers=headers or {})
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, dict(response.headers), \
                    response.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()

    def json(self, method, path, body=None, headers=None):
        status, resp_headers, raw = self.http(method, path, body, headers)
        payload = json.loads(raw) if raw else None
        if isinstance(payload, dict):  # every JSON body obeys the schema
            kind = classify_payload(payload)
            assert kind is not None, payload
            assert validate_payload(kind, payload) == [], payload
        return status, resp_headers, payload

    def submit(self, body=MATRIX):
        status, headers, payload = self.json("POST", "/runs", body)
        assert status == 201, payload
        return headers["Location"].rsplit("/", 1)[1], payload

    def wait_done(self, job_id):
        deadline = time.monotonic() + DEADLINE_S
        while time.monotonic() < deadline:
            status, _, payload = self.json("GET", f"/runs/{job_id}")
            assert status == 200, payload
            if payload["state"] in ("done", "failed"):
                return payload
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never settled")


class TestLifecycle:
    def test_submit_simulate_fetch_revalidate(self, cache):
        with Daemon(cache) as daemon:
            status, _, health = daemon.json("GET", "/healthz")
            assert status == 200 and health["ok"]
            assert health["simulations"] == 0

            job_id, created = daemon.submit()
            assert created["state"] == "pending"
            assert created["total_cells"] == 1
            settled = daemon.wait_done(job_id)
            assert settled["state"] == "done", settled["error"]
            [cell] = settled["cells"]
            assert cell["state"] == "simulated"
            assert "progress" in settled  # GET includes the live block

            # the cell key addresses the record; the key is the ETag
            status, headers, raw = daemon.http(
                "GET", f"/records/{cell['key']}")
            assert status == 200
            assert headers["ETag"] == f'"{cell["key"]}"'
            record = json.loads(raw)
            assert record["workload"] == "water"
            assert validate_payload("record", record) == []

            status, headers, raw = daemon.http(
                "GET", f"/records/{cell['key']}",
                headers={"If-None-Match": f'"{cell["key"]}"'})
            assert status == 304 and raw == b""
            assert headers["ETag"] == f'"{cell["key"]}"'

            status, headers, raw = daemon.http("GET", "/dashboard")
            assert status == 200
            assert headers["Content-Type"].startswith("text/html")
            assert b"<html" in raw and b"water" in raw

            _, _, health = daemon.json("GET", "/healthz")
            assert health["simulations"] == 1
            assert health["jobs"]["done"] == 1

    def test_second_identical_job_is_fully_cached(self, cache):
        with Daemon(cache) as daemon:
            first, _ = daemon.submit()
            daemon.wait_done(first)
            second, _ = daemon.submit()
            settled = daemon.wait_done(second)
            assert [c["state"] for c in settled["cells"]] == ["cached"]
            _, _, health = daemon.json("GET", "/healthz")
            assert health["simulations"] == 1  # nothing re-ran


class TestValidationAndRouting:
    def test_error_responses(self, cache):
        with Daemon(cache, drain=False) as daemon:
            for method, path, body in [
                ("POST", "/runs", {"wrkloads": ["water"]}),  # typo'd field
                ("POST", "/runs", {"workloads": ["no-such"]}),
                ("POST", "/runs", {"instructions": "many"}),
                ("GET", "/records/not..a..key", None),
                ("GET", "/runs/not-alnum", None),
            ]:
                status, _, payload = daemon.json(method, path, body)
                assert status == 400, (path, payload)
                assert payload["error"]
            status, _, _ = daemon.json("GET", "/records/" + "f" * 24)
            assert status == 404
            status, _, _ = daemon.json("GET", "/runs/feedfacebeef")
            assert status == 404
            status, _, _ = daemon.json("DELETE", "/runs")
            assert status == 405
            status, _, _ = daemon.json("GET", "/nope")
            assert status == 404

    def test_non_json_body_rejected(self, cache):
        with Daemon(cache, drain=False) as daemon:
            status, _, raw = daemon.http("POST", "/runs")
            # empty body = all defaults: accepted as a full sweep
            assert status == 201
            request = urllib.request.Request(
                f"http://127.0.0.1:{daemon.app.port}/runs",
                data=b"not json", method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 400


class TestCoalescer:
    def test_first_claim_owns_later_claims_wait(self):
        from repro.serve.coalesce import Coalescer

        async def scenario():
            coalescer = Coalescer()
            owned, future = coalescer.claim("k1")
            assert owned and len(coalescer) == 1
            again, shared = coalescer.claim("k1")
            assert not again and shared is future
            coalescer.resolve("k1", "record")
            assert await shared == "record"
            assert len(coalescer) == 0
            # the key is free again after resolution
            assert coalescer.claim("k1")[0]

        asyncio.run(scenario())

    def test_fail_propagates_to_waiters(self):
        from repro.serve.coalesce import Coalescer

        async def scenario():
            coalescer = Coalescer()
            coalescer.claim("k1")
            _, shared = coalescer.claim("k1")
            coalescer.fail("k1", "run died")
            with pytest.raises(RuntimeError, match="run died"):
                await shared
            # failing an already-settled or unknown key is a no-op
            coalescer.fail("k1", "again")
            coalescer.resolve("k2", "orphan")

        asyncio.run(scenario())


class TestCoalescing:
    def test_identical_concurrent_submissions_share_one_simulation(
            self, cache):
        clients = 4
        with Daemon(cache, workers=1, job_concurrency=clients) as daemon:
            ids = []
            errors = []
            gate = threading.Barrier(clients, timeout=30)

            def post():
                try:
                    gate.wait()  # all submissions land together
                    ids.append(daemon.submit()[0])
                except Exception as exc:  # surfaced after join
                    errors.append(exc)

            threads = [threading.Thread(target=post)
                       for _ in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors and len(ids) == clients

            settled = [daemon.wait_done(job_id) for job_id in ids]
            for payload in settled:
                assert payload["state"] == "done", payload["error"]
                [cell] = payload["cells"]
                assert cell["state"] in ("simulated", "coalesced", "cached")

            # the acceptance criterion: N identical submissions, ONE run
            assert daemon.app.simulations == 1
            states = sorted(payload["cells"][0]["state"]
                            for payload in settled)
            assert states.count("simulated") == 1
            assert len(list((cache / "runs").glob("*.json"))) == 1


class TestEndpointLabels:
    def test_labels_stay_low_cardinality(self):
        from repro.serve.app import _endpoint_label

        assert _endpoint_label("/healthz") == "/healthz"
        assert _endpoint_label("/metrics") == "/metrics"
        assert _endpoint_label("/runs") == "/runs"
        assert _endpoint_label("/runs/abc123") == "/runs/:id"
        assert _endpoint_label("/runs/abc123/trace") == "/runs/:id/trace"
        assert _endpoint_label("/records/" + "f" * 24) == "/records/:key"
        assert _endpoint_label("/records/x?pretty=1") == "/records/:key"
        assert _endpoint_label("/wat") == "other"


class TestTelemetry:
    def test_job_trace_spans_share_one_correlation_id(self, cache):
        with Daemon(cache) as daemon:
            status, headers, payload = daemon.json("POST", "/runs", MATRIX)
            assert status == 201
            trace_id = headers["X-Trace-Id"]
            assert len(trace_id) == 16
            assert payload["trace"] == trace_id
            job_id = headers["Location"].rsplit("/", 1)[1]
            daemon.wait_done(job_id)

            status, _, raw = daemon.http("GET", f"/runs/{job_id}/trace")
            assert status == 200
            events = json.loads(raw)["traceEvents"]
            slices = [e for e in events if e["ph"] == "X"]
            stages = {e["name"] for e in slices}
            # the acceptance criterion: the full lifecycle, one trace id
            assert {"validate", "enqueue", "claim", "simulate",
                    "respond"} <= stages
            assert {e["args"]["trace"] for e in slices} == {trace_id}
            assert {e["args"]["job"] for e in slices} == {job_id}
            # spans survive on disk under queue/spans/<job>.jsonl
            span_file = cache / "queue" / "spans" / f"{job_id}.jsonl"
            assert span_file.exists()

    def test_trace_of_unknown_job_is_404_bad_id_400(self, cache):
        with Daemon(cache, drain=False) as daemon:
            status, _, payload = daemon.json("GET",
                                             "/runs/feedfacebeef/trace")
            assert status == 404 and payload["error"]
            status, _, _ = daemon.json("GET", "/runs/not-alnum/trace")
            assert status == 400

    def test_metrics_endpoint_is_valid_prometheus_text(self, cache):
        from repro.obs.metrics import validate_exposition

        with Daemon(cache) as daemon:
            daemon.json("GET", "/healthz")
            job_id, _ = daemon.submit()
            daemon.wait_done(job_id)
            status, headers, raw = daemon.http("GET", "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")
            text = raw.decode("utf-8")
            assert validate_exposition(text) == []
            assert 'repro_http_requests_total{endpoint="/healthz"' in text
            assert "repro_simulations_total 1" in text
            assert "repro_queue_depth 0" in text
            # every lifecycle stage left a latency histogram series
            for stage in ("validate", "enqueue", "claim", "simulate",
                          "respond"):
                assert f'repro_stage_ns_count{{stage="{stage}"}}' in text

    def test_record_requests_and_304s_are_counted(self, cache):
        with Daemon(cache) as daemon:
            job_id, _ = daemon.submit()
            settled = daemon.wait_done(job_id)
            key = settled["cells"][0]["key"]
            daemon.http("GET", f"/records/{key}")
            daemon.http("GET", f"/records/{key}",
                        headers={"If-None-Match": f'"{key}"'})
            metrics = daemon.app.metrics
            assert metrics.value("repro_record_requests_total") == 2
            assert metrics.value("repro_record_304_total") == 1

    def test_live_scrape_during_coalesced_sweep(self, cache):
        """The issue's acceptance test: N identical concurrent POSTs,
        one owned simulation, the rest coalesced/cached; /metrics is
        scrapeable mid-flight and the counters reconcile after drain."""
        from repro.obs.metrics import validate_exposition

        clients = 4
        with Daemon(cache, workers=1, job_concurrency=clients) as daemon:
            ids = []
            errors = []
            scrapes = []
            gate = threading.Barrier(clients + 1, timeout=30)

            def post():
                try:
                    gate.wait()
                    ids.append(daemon.submit()[0])
                except Exception as exc:
                    errors.append(exc)

            def scrape():
                gate.wait()  # scrape while submissions are in flight
                status, _, raw = daemon.http("GET", "/metrics")
                scrapes.append((status, raw.decode("utf-8")))

            threads = [threading.Thread(target=post)
                       for _ in range(clients)]
            threads.append(threading.Thread(target=scrape))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors and len(ids) == clients

            status, text = scrapes[0]
            assert status == 200
            assert validate_exposition(text) == []  # valid mid-flight

            settled = [daemon.wait_done(job_id) for job_id in ids]
            states = [payload["cells"][0]["state"] for payload in settled]
            metrics = daemon.app.metrics

            # exactly one claim owned the simulation; every other
            # submission either coalesced onto it or (if it arrived
            # after the record landed) hit the cache — together they
            # account for the other N-1 clients
            assert metrics.value("repro_coalesce_owned_total") == 1
            assert metrics.value("repro_coalesce_hits_total") == \
                states.count("coalesced")
            assert metrics.value("repro_cache_hits_total") == \
                states.count("cached")
            assert states.count("coalesced") + states.count("cached") == \
                clients - 1
            assert metrics.value("repro_simulations_total") == 1
            assert metrics.value("repro_jobs_total",
                                 outcome="done") == clients

            # after the drain the queue gauges read empty
            status, _, raw = daemon.http("GET", "/metrics")
            text = raw.decode("utf-8")
            assert validate_exposition(text) == []
            assert "repro_queue_depth 0" in text
            assert "repro_coalesce_inflight 0" in text
            _, _, health = daemon.json("GET", "/healthz")
            assert health["queue_depth"] == 0
            assert health["lanes"]["running"] == 0


class TestRestartResume:
    def test_queue_survives_kill_and_restart(self, cache):
        # Stage a half-drained queue: daemon A accepts but never drains
        # (stand-in for a daemon killed mid-work), with one job already
        # marked running and one of its two cells pre-simulated.
        with Daemon(cache, drain=False) as staging:
            two_cell = dict(MATRIX, configs=["Base-2L", "D2M-FS"])
            interrupted, _ = staging.submit(two_cell)
            waiting, _ = staging.submit(MATRIX)
            job = staging.app.queue.load(interrupted)
            job.state = "running"
            job.cells[0].state = "simulated"
            staging.app.queue.save(job)
            from repro.experiments.runner import get_matrix
            get_matrix(workloads=["water"], configs=None,
                       instructions=800, seed=5, quiet=True, jobs=1)

        before = len(list((cache / "runs").glob("*.json")))
        with Daemon(cache, workers=1) as daemon:
            assert daemon.app.recovered_jobs == [interrupted]
            for job_id in (interrupted, waiting):
                settled = daemon.wait_done(job_id)
                assert settled["state"] == "done", settled["error"]
                for cell in settled["cells"]:
                    assert cell["state"] == "cached"  # nothing re-ran
                    status, _, _ = daemon.http("GET",
                                               f"/records/{cell['key']}")
                    assert status == 200  # ...and nothing was lost
            assert daemon.app.simulations == 0
            _, _, health = daemon.json("GET", "/healthz")
            assert health["jobs"] == {"pending": 0, "running": 0,
                                      "done": 2, "failed": 0}
        assert len(list((cache / "runs").glob("*.json"))) == before

    def test_restart_simulates_only_the_missing_cells(self, cache):
        with Daemon(cache, drain=False) as staging:
            job_id, _ = staging.submit(dict(MATRIX,
                                            configs=["Base-2L", "D2M-FS"]))
            from repro.experiments.runner import get_matrix
            from repro.common.params import base_2l
            get_matrix(workloads=["water"], configs=[base_2l(8)],
                       instructions=800, seed=5, quiet=True, jobs=1)

        with Daemon(cache, workers=1) as daemon:
            settled = daemon.wait_done(job_id)
            assert settled["state"] == "done", settled["error"]
            states = {cell["config"]: cell["state"]
                      for cell in settled["cells"]}
            assert states == {"Base-2L": "cached", "D2M-FS": "simulated"}
            assert daemon.app.simulations == 1
