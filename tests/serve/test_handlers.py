"""Submission validation and response construction (no sockets)."""

import json

import pytest

from repro.experiments.runner import run_cache_key
from repro.serve.handlers import (
    MAX_CELLS_PER_JOB,
    MAX_NODES,
    BadRequest,
    build_cells,
    job_payload,
    parse_submission,
    record_response,
    tail_jsonl,
    timeline_payload,
)
from repro.serve.queue import make_job
from repro.sim.runner import instruction_budget, warmup_budget
from repro.workloads.registry import workload_names


class TestParseSubmission:
    def test_minimal_body_resolves_every_default(self):
        request, configs = parse_submission({})
        assert request["workloads"] == workload_names()
        assert request["configs"] == [config.name for config in configs]
        assert request["instructions"] == instruction_budget()
        assert request["warmup"] == warmup_budget(request["instructions"])
        assert request["seed"] == 1
        assert request["nodes"] == 8

    def test_explicit_fields_round_trip(self):
        request, configs = parse_submission({
            "workloads": ["water", "lu"], "configs": ["Base-2L", "D2M-FS"],
            "instructions": 5_000, "seed": 7, "warmup": 250, "nodes": 4,
            "timeline": 2048})
        assert request == {"workloads": ["water", "lu"],
                           "configs": ["Base-2L", "D2M-FS"],
                           "instructions": 5_000, "seed": 7,
                           "warmup": 250, "nodes": 4, "timeline": 2048}
        assert [config.nodes for config in configs] == [4, 4]

    def test_config_names_case_insensitive_order_preserving(self):
        request, _ = parse_submission({"configs": ["d2m-fs", "BASE-2L",
                                                   "d2m-fs"]})
        assert request["configs"] == ["D2M-FS", "Base-2L"]  # deduped

    @pytest.mark.parametrize("body,fragment", [
        ([], "JSON object"),
        ({"wrkloads": ["water"]}, "unknown field"),
        ({"workloads": []}, "non-empty"),
        ({"workloads": ["no-such-workload"]}, "no-such-workload"),
        ({"workloads": "water"}, "non-empty list"),
        ({"configs": ["NotASystem"]}, "NotASystem"),
        ({"configs": []}, "non-empty"),
        ({"instructions": "many"}, "integer"),
        ({"instructions": True}, "integer"),
        ({"instructions": -5}, ">="),
        ({"seed": -1}, ">="),
        ({"warmup": -1}, "warmup"),
        ({"warmup": "lots"}, "warmup"),
        ({"nodes": 0}, ">="),
        ({"nodes": MAX_NODES + 1}, "<="),
    ])
    def test_rejections(self, body, fragment):
        with pytest.raises(BadRequest) as excinfo:
            parse_submission(body)
        assert fragment in str(excinfo.value)

    def test_null_warmup_means_derived(self):
        request, _ = parse_submission({"instructions": 2_000,
                                       "warmup": None})
        assert request["warmup"] == warmup_budget(2_000)

    def test_matrix_size_cap(self, monkeypatch):
        import repro.serve.handlers as handlers

        monkeypatch.setattr(handlers, "MAX_CELLS_PER_JOB", 3)
        with pytest.raises(BadRequest) as excinfo:
            parse_submission({"workloads": ["water", "lu"],
                              "configs": ["Base-2L", "D2M-FS"]})
        assert "matrix too large" in str(excinfo.value)
        assert MAX_CELLS_PER_JOB >= 4  # the real cap admits real sweeps


class TestBuildCells:
    def test_keys_match_run_cache(self):
        request, configs = parse_submission({
            "workloads": ["water"], "configs": ["Base-2L", "D2M-FS"],
            "instructions": 1_000, "seed": 5, "warmup": 400})
        cells = build_cells(request, configs)
        assert [(c.workload, c.config) for c in cells] == [
            ("water", "Base-2L"), ("water", "D2M-FS")]
        for cell in cells:
            assert cell.state == "pending"
            assert cell.key == run_cache_key("water", cell.config,
                                             1_000, 5, 400)


class TestJobPayload:
    def request(self):
        request, configs = parse_submission({"workloads": ["water"],
                                             "configs": ["Base-2L"]})
        return make_job(request, build_cells(request, configs))

    def test_bare_payload_has_no_progress(self):
        payload = job_payload(self.request())
        assert "progress" not in payload
        assert payload["total_cells"] == 1

    def test_progress_block_from_dirs(self, tmp_path):
        progress = tmp_path / "progress.jsonl"
        progress.write_text('{"event": "a"}\nnot json\n{"event": "b"}\n')
        payload = job_payload(self.request(), heartbeat_dir=tmp_path / "hb",
                              progress_path=progress, recent=5)
        assert payload["progress"]["heartbeats"] == []  # dir absent: empty
        assert [r["event"] for r in payload["progress"]["recent"]] \
            == ["a", "b"]


class TestTimelinePayload:
    def job(self, timeline=4096):
        request, configs = parse_submission({"workloads": ["water"],
                                             "configs": ["Base-2L"],
                                             "timeline": timeline})
        return make_job(request, build_cells(request, configs))

    def test_finished_cell_serves_the_cached_series(self, tmp_path):
        from repro.obs.timeline import TIMELINE_SERIES
        from repro.serve.schema import classify_payload, validate_payload
        job = self.job()
        key = job.cells[0].key
        series = {name: [1, 2] for name in TIMELINE_SERIES}
        (tmp_path / f"{key}.json").write_text(json.dumps({
            "workload": "water", "timeline": {
                "epochs": 2, "epoch_accesses": 4096, "roi_epoch": 1,
                "series": series}}))
        payload = timeline_payload(job, tmp_path)
        assert payload["timeline_epoch"] == 4096
        assert payload["cells"][0]["timeline"]["epochs"] == 2
        assert payload["live"] == []
        assert classify_payload(payload) == "timeline"
        assert validate_payload("timeline", payload) == []

    def test_untimed_cell_carries_no_series(self, tmp_path):
        job = self.job(timeline=0)
        key = job.cells[0].key
        (tmp_path / f"{key}.json").write_text(json.dumps(
            {"workload": "water", "timeline": {}}))
        payload = timeline_payload(job, tmp_path)
        assert payload["timeline_epoch"] == 0
        assert "timeline" not in payload["cells"][0]

    def test_live_streams_are_tailed_from_heartbeat_dir(self, tmp_path):
        hb = tmp_path / "hb"
        hb.mkdir()
        (hb / "tl-99.jsonl").write_text(
            '{"epoch": 0, "instructions": 10}\n'
            '{"epoch": 1, "instructions": 20}\n')
        payload = timeline_payload(self.job(), tmp_path, heartbeat_dir=hb,
                                   live_limit=1)
        assert payload["live"] == [{"stream": "tl-99",
                                    "epochs": [{"epoch": 1,
                                                "instructions": 20}]}]


class TestTailJsonl:
    def test_last_n_parsable_records_in_order(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("\n".join(json.dumps({"n": i}) for i in range(10)))
        assert [r["n"] for r in tail_jsonl(path, 3)] == [7, 8, 9]

    def test_skips_torn_and_blank_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"n": 1}\n\n{"torn": \n{"n": 2}\n[3]\n')
        assert [r["n"] for r in tail_jsonl(path, 10)] == [1, 2]

    def test_missing_file_is_empty(self, tmp_path):
        assert tail_jsonl(tmp_path / "absent.jsonl", 5) == []


class TestRecordResponse:
    KEY = "a1b2c3d4e5f60718293a4b5c"

    def serve(self, tmp_path, if_none_match=""):
        return record_response(tmp_path, self.KEY, if_none_match)

    def test_hit_carries_strong_etag(self, tmp_path):
        (tmp_path / f"{self.KEY}.json").write_text('{"workload": "water"}')
        status, etag, body = self.serve(tmp_path)
        assert status == 200
        assert etag == f'"{self.KEY}"'
        assert json.loads(body)["workload"] == "water"

    def test_revalidation_304_without_body(self, tmp_path):
        (tmp_path / f"{self.KEY}.json").write_text('{"workload": "water"}')
        for header in (f'"{self.KEY}"', "*", f'W/"{self.KEY}"',
                       f'"other", "{self.KEY}"'):
            status, etag, body = self.serve(tmp_path, header)
            assert (status, body) == (304, b""), header
            assert etag == f'"{self.KEY}"'

    def test_stale_etag_gets_fresh_body(self, tmp_path):
        (tmp_path / f"{self.KEY}.json").write_text('{"workload": "water"}')
        status, _, body = self.serve(tmp_path, '"deadbeef"')
        assert status == 200 and body

    def test_missing_record_is_404_even_with_matching_etag(self, tmp_path):
        # a reaped/absent record must not masquerade as revalidated
        status, _, _ = self.serve(tmp_path, f'"{self.KEY}"')
        assert status == 404

    @pytest.mark.parametrize("key", ["../etc/passwd", "a.b", "", "a b"])
    def test_malformed_keys_rejected(self, tmp_path, key):
        status, _, _ = record_response(tmp_path, key, "")
        assert status == 400
