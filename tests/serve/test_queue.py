"""Persistent job queue: round-trips, corruption, ordering, recovery."""

import json

import pytest

from repro.serve.queue import Job, JobCell, JobQueue, make_job, new_job_id


def cell(workload="water", config="Base-2L", key="k" * 24, state="pending"):
    return JobCell(workload=workload, config=config, key=key, state=state)


def job(queue, job_id, state="pending", ts=1.0):
    item = Job(id=job_id, state=state, created_ts=ts,
               request={"workloads": ["water"]}, cells=[cell()])
    queue.save(item)
    return item


class TestJobDocument:
    def test_round_trip(self, tmp_path):
        queue = JobQueue(tmp_path)
        original = make_job({"workloads": ["water"], "seed": 5},
                            [cell(), cell(config="D2M-FS", key="m" * 24)])
        queue.submit(original)
        loaded = queue.load(original.id)
        assert loaded is not None
        assert loaded.to_json() == original.to_json()

    def test_done_cells_counts_terminal_successes(self):
        item = Job(id="j1", state="running", created_ts=1.0, request={},
                   cells=[cell(state="cached"), cell(state="simulated"),
                          cell(state="coalesced"), cell(state="failed"),
                          cell(state="pending")])
        assert item.done_cells == 3
        assert item.to_json()["done_cells"] == 3
        assert item.to_json()["total_cells"] == 5

    def test_bad_states_rejected(self):
        with pytest.raises(ValueError):
            Job(id="j", state="paused", created_ts=1.0, request={})
        with pytest.raises(ValueError):
            cell(state="warming")

    def test_ids_are_unique(self):
        assert len({new_job_id() for _ in range(100)}) == 100


class TestJobQueue:
    def test_load_missing_or_corrupt_is_none(self, tmp_path):
        queue = JobQueue(tmp_path)
        assert queue.load("nope") is None
        (tmp_path / "torn.json").write_text('{"id": "torn", "sta')
        assert queue.load("torn") is None
        assert queue.jobs() == []  # corrupt files don't break listing

    def test_jobs_ordered_oldest_first(self, tmp_path):
        queue = JobQueue(tmp_path)
        job(queue, "bbb", ts=2.0)
        job(queue, "aaa", ts=1.0)
        job(queue, "ccc", ts=2.0)  # same tick: id breaks the tie
        assert [item.id for item in queue.jobs()] == ["aaa", "bbb", "ccc"]

    def test_next_pending_skips_settled_jobs(self, tmp_path):
        queue = JobQueue(tmp_path)
        job(queue, "done1", state="done", ts=1.0)
        job(queue, "run1", state="running", ts=2.0)
        wanted = job(queue, "pend1", ts=3.0)
        nxt = queue.next_pending()
        assert nxt is not None and nxt.id == wanted.id

    def test_counts(self, tmp_path):
        queue = JobQueue(tmp_path)
        job(queue, "a", state="pending")
        job(queue, "b", state="done")
        job(queue, "c", state="done")
        assert queue.counts() == {"pending": 1, "running": 0,
                                  "done": 2, "failed": 0}

    def test_recover_requeues_only_running(self, tmp_path):
        queue = JobQueue(tmp_path)
        job(queue, "interrupted", state="running")
        job(queue, "finished", state="done")
        job(queue, "waiting", state="pending")
        assert queue.recover() == ["interrupted"]
        reloaded = queue.load("interrupted")
        assert reloaded is not None and reloaded.state == "pending"
        done = queue.load("finished")
        assert done is not None and done.state == "done"

    def test_save_is_atomic(self, tmp_path):
        queue = JobQueue(tmp_path)
        item = job(queue, "solid")
        # the write left no temp litter and the file parses standalone
        assert list(tmp_path.glob("*.tmp")) == []
        data = json.loads((tmp_path / "solid.json").read_text())
        assert data["id"] == item.id
