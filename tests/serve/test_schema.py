"""Serving-API payload schemas and the --serve-schema lint entry."""

import json

from repro.experiments.records import SCALAR_METRICS
from repro.serve.schema import classify_payload, validate_payload
from tools.lint_repro import check_serve_schema, main as lint_main


def health_payload(**overrides):
    payload = {"ok": True, "version": "1.0", "simulations": 3, "inflight": 0,
               "queue_depth": 1, "uptime_s": 12.5,
               "jobs": {"pending": 0, "running": 1, "done": 2, "failed": 0},
               "lanes": {"idle": 1, "running": 1, "stalled": 0}}
    payload.update(overrides)
    return payload


def job_payload(**overrides):
    payload = {
        "id": "abc123", "state": "done", "created_ts": 1000.5, "error": "",
        "request": {"workloads": ["water"], "configs": ["Base-2L"],
                    "instructions": 1000, "seed": 5, "warmup": 400,
                    "nodes": 8},
        "cells": [{"workload": "water", "config": "Base-2L",
                   "key": "k" * 24, "state": "simulated"}],
        "done_cells": 1, "total_cells": 1,
    }
    payload.update(overrides)
    return payload


def record_payload(**overrides):
    payload = {"workload": "water", "category": "scientific",
               "config": "Base-2L", "instructions": 1000,
               "events": {}, "hists": {}}
    for name in SCALAR_METRICS:
        payload[name] = 1.0
    payload.update(overrides)
    return payload


def timeline_payload_doc(**overrides):
    payload = {
        "job": "abc123", "state": "running", "timeline_epoch": 4096,
        "cells": [{"workload": "water", "config": "Base-2L",
                   "key": "k" * 24, "state": "simulated",
                   "timeline": {"epochs": 0}}],
        "live": [{"stream": "tl-42", "epochs": [{"epoch": 0,
                                                 "instructions": 10}]}],
    }
    payload.update(overrides)
    return payload


class TestValidators:
    def test_valid_payloads_pass(self):
        assert validate_payload("health", health_payload()) == []
        assert validate_payload("job", job_payload()) == []
        assert validate_payload("record", record_payload()) == []
        assert validate_payload("timeline", timeline_payload_doc()) == []
        assert validate_payload("error", {"error": "boom"}) == []

    def test_unknown_kind_and_non_object(self):
        assert validate_payload("widget", {})
        assert validate_payload("health", [1, 2])

    def test_health_job_counts_must_cover_every_state(self):
        broken = health_payload(jobs={"pending": 0})
        assert any("running" in p for p in validate_payload("health", broken))

    def test_health_lane_counts_must_cover_every_state(self):
        broken = health_payload(lanes={"idle": 2})
        problems = validate_payload("health", broken)
        assert any("stalled" in p for p in problems)

    def test_health_requires_queue_depth_and_uptime(self):
        broken = health_payload()
        del broken["queue_depth"], broken["uptime_s"]
        problems = validate_payload("health", broken)
        assert any("queue_depth" in p for p in problems)
        assert any("uptime_s" in p for p in problems)

    def test_job_trace_optional_but_typed(self):
        assert validate_payload("job", job_payload(trace="a" * 16)) == []
        assert validate_payload("job", job_payload()) == []  # pre-tracing
        assert any("trace" in p for p in validate_payload(
            "job", job_payload(trace=42)))

    def test_job_state_and_cell_state_vocabulary(self):
        assert any("paused" in p for p in validate_payload(
            "job", job_payload(state="paused")))
        bad_cell = job_payload()
        bad_cell["cells"][0]["state"] = "warming"
        assert any("warming" in p for p in validate_payload("job", bad_cell))

    def test_job_request_echo_is_checked(self):
        broken = job_payload()
        del broken["request"]["warmup"]
        broken["request"]["workloads"] = []
        problems = validate_payload("job", broken)
        assert any("request.warmup" in p for p in problems)
        assert any("request.workloads" in p for p in problems)

    def test_job_progress_block_optional_but_shaped(self):
        with_progress = job_payload(progress={"heartbeats": [{}],
                                              "recent": [{"event": "x"}]})
        assert validate_payload("job", with_progress) == []
        broken = job_payload(progress={"heartbeats": "nope", "recent": []})
        assert any("heartbeats" in p
                   for p in validate_payload("job", broken))

    def test_record_requires_every_scalar_metric(self):
        broken = record_payload()
        del broken[SCALAR_METRICS[0]]
        assert any(SCALAR_METRICS[0] in p
                   for p in validate_payload("record", broken))

    def test_error_message_must_be_nonempty(self):
        assert validate_payload("error", {"error": ""})

    def test_timeline_nested_series_are_schema_checked(self):
        broken = timeline_payload_doc()
        broken["cells"][0]["timeline"] = {"epochs": "3"}
        assert any("not an int" in p
                   for p in validate_payload("timeline", broken))

    def test_timeline_live_streams_must_be_shaped(self):
        broken = timeline_payload_doc(live=[{"stream": "tl-1",
                                             "epochs": "not-a-list"}])
        assert any("live[0]" in p
                   for p in validate_payload("timeline", broken))

    def test_record_timeline_field_is_validated(self):
        broken = record_payload(timeline={"epochs": -2})
        assert any("negative" in p
                   for p in validate_payload("record", broken))
        # pre-v9 records carry no timeline at all: still valid
        assert validate_payload("record", record_payload()) == []


class TestClassify:
    def test_shapes(self):
        assert classify_payload(health_payload()) == "health"
        assert classify_payload(job_payload()) == "job"
        assert classify_payload(record_payload()) == "record"
        assert classify_payload(timeline_payload_doc()) == "timeline"
        assert classify_payload({"error": "boom"}) == "error"

    def test_unrecognizable(self):
        assert classify_payload({"stuff": 1}) is None
        assert classify_payload([1]) is None
        # an extra key means it is not a bare error envelope
        assert classify_payload({"error": "x", "detail": "y"}) is None


class TestLintEntry:
    def write(self, directory, name, payload):
        path = directory / name
        path.write_text(json.dumps(payload))
        return path

    def test_directory_of_valid_payloads(self, tmp_path, capsys):
        self.write(tmp_path, "health.json", health_payload())
        self.write(tmp_path, "job.json", job_payload())
        self.write(tmp_path, "record.json", record_payload())
        self.write(tmp_path, "error.json", {"error": "no such job"})
        assert check_serve_schema([tmp_path]) == []
        assert lint_main(["--serve-schema", str(tmp_path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_payload_fails_the_lint(self, tmp_path, capsys):
        self.write(tmp_path, "bad.json", health_payload(ok="yes"))
        assert lint_main(["--serve-schema", str(tmp_path)]) == 1
        assert "ok" in capsys.readouterr().out

    def test_unrecognizable_shape_is_a_problem(self, tmp_path):
        self.write(tmp_path, "mystery.json", {"what": "even"})
        problems = check_serve_schema([tmp_path])
        assert any("unrecognizable" in p for p in problems)

    def test_empty_match_is_a_problem(self, tmp_path):
        assert check_serve_schema([tmp_path])  # no *.json inside

    def test_no_args_is_usage_error(self, capsys):
        assert lint_main(["--serve-schema"]) == 2
        assert "needs" in capsys.readouterr().err
