"""Request-lifecycle spans: ids, the ring, persistence, Chrome export."""

import json

import pytest

from repro.obs.trace import SPAN_STAGES, chrome_span_events
from repro.serve.telemetry import (
    Span,
    SpanRing,
    StageTimer,
    load_spans,
    new_trace_id,
)


def span(stage="validate", job="job1", trace="t" * 16, ts=100.0,
         dur_s=0.5, **meta):
    return Span(trace=trace, job=job, stage=stage, ts=ts, dur_s=dur_s,
                meta=dict(meta))


class TestTraceIds:
    def test_fresh_ids_are_short_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)  # hex


class TestSpan:
    def test_unknown_stage_rejected_at_construction(self):
        with pytest.raises(ValueError, match="warmup"):
            span(stage="warmup")

    def test_every_declared_stage_is_accepted(self):
        for stage in SPAN_STAGES:
            assert span(stage=stage).stage == stage

    def test_to_json_flattens_meta_but_core_keys_win(self):
        record = span(cells=3, stage_override="ignored").to_json()
        assert record["cells"] == 3
        assert record["stage"] == "validate"
        # a meta key that collides with a core key must not clobber it
        record = Span(trace="t", job="j", stage="claim", ts=1.0, dur_s=0.1,
                      meta={"trace": "spoofed", "lane": 2}).to_json()
        assert record["trace"] == "t"
        assert record["lane"] == 2


class TestSpanRing:
    def test_record_appends_ring_and_jsonl(self, tmp_path):
        ring = SpanRing(tmp_path)
        ring.record(span(stage="validate", ts=1.0))
        ring.record(span(stage="enqueue", ts=2.0))
        ring.record(span(stage="claim", job="job2", ts=3.0))
        assert len(ring) == 3
        lines = (tmp_path / "job1.jsonl").read_text().splitlines()
        assert [json.loads(line)["stage"] for line in lines] == \
            ["validate", "enqueue"]
        assert (tmp_path / "job2.jsonl").exists()

    def test_for_job_merges_file_and_ring_sorted_by_ts(self, tmp_path):
        ring = SpanRing(tmp_path)
        ring.record(span(stage="enqueue", ts=2.0))
        ring.record(span(stage="validate", ts=1.0))
        spans = ring.for_job("job1")
        assert [s["stage"] for s in spans] == ["validate", "enqueue"]
        assert all(s["trace"] == "t" * 16 for s in spans)
        # spans still in the ring but missing from the file are merged
        memory_only = SpanRing(None)
        memory_only.record(span(stage="respond", ts=9.0))
        assert [s["stage"] for s in memory_only.for_job("job1")] == \
            ["respond"]

    def test_capacity_bounds_the_ring_not_the_files(self, tmp_path):
        ring = SpanRing(tmp_path, capacity=2)
        for index in range(5):
            ring.record(span(stage="claim", ts=float(index)))
        assert len(ring) == 2
        # the durable copy keeps everything
        assert len(load_spans(tmp_path, "job1")) == 5

    def test_unwritable_directory_never_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        ring = SpanRing(blocker / "spans")
        ring.record(span())  # swallowed OSError
        assert len(ring) == 1


class TestLoadSpans:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_spans(tmp_path, "nope") == []

    def test_corrupt_and_partial_lines_are_skipped(self, tmp_path):
        path = tmp_path / "job1.jsonl"
        good = json.dumps(span().to_json())
        path.write_text("not json\n" + good + "\n"
                        + '{"stage": "claim"}\n'   # no ts
                        + '[1, 2]\n'
                        + "\n")
        spans = load_spans(tmp_path, "job1")
        assert len(spans) == 1 and spans[0]["stage"] == "validate"


class TestStageTimer:
    def test_captures_epoch_start_and_duration(self):
        with StageTimer() as timer:
            pass
        assert timer.ts > 0
        assert timer.dur_s >= 0


class TestChromeExport:
    def test_spans_export_one_track_per_stage(self):
        spans = [span(stage=stage, ts=100.0 + i, dur_s=0.25).to_json()
                 for i, stage in enumerate(SPAN_STAGES)]
        events = chrome_span_events(spans)
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(SPAN_STAGES)
        # timestamps rebase to the earliest span; microsecond units
        assert min(e["ts"] for e in slices) == 0.0
        assert all(e["dur"] == 0.25e6 for e in slices)
        # the correlation id rides in args on every slice
        assert all(e["args"]["trace"] == "t" * 16 for e in slices)
        tids = {e["tid"] for e in slices}
        assert len(tids) == len(SPAN_STAGES)  # one track per stage
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == set(SPAN_STAGES)

    def test_empty_input_still_names_the_process(self):
        events = chrome_span_events([])
        assert events[0]["name"] == "process_name"
        assert events[0]["args"]["name"] == "repro serve"

    def test_zero_duration_spans_get_a_visible_sliver(self):
        events = chrome_span_events([span(dur_s=0.0).to_json()])
        [slice_] = [e for e in events if e["ph"] == "X"]
        assert slice_["dur"] == 1.0  # 1 µs floor so the viewer shows it
