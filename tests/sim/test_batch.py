"""Equivalence tests for the batched fast-path driver (repro.sim.batch).

The contract under test: ``Simulator.run(..., batched=True)`` produces
bit-identical statistics to the scalar loop — stats tree, energy
counts, latency buckets, per-core totals, model cycles, and telemetry
histogram digests — for every system kind, with and without warm-up,
with and without tracers attached.
"""

import pytest

from repro.common.params import all_configs, base_2l, d2m_fs, d2m_ns_r
from repro.core.hierarchy import build_hierarchy
from repro.obs.telemetry import Telemetry
from repro.sim.bench import BENCH_CONFIGS, BENCH_WORKLOADS, result_snapshot
from repro.sim.perf import PerfModel
from repro.sim.simulator import Simulator
from repro.workloads.registry import make_workload


def _config(name):
    return {c.name: c for c in all_configs()}[name]


def _simulate(config, workload_name, batched, *, instructions=900,
              warmup=300, telemetry=False, sanitize=False, tracer=None,
              check_values=True, nodes=None, seed=3):
    hierarchy = build_hierarchy(config)
    if sanitize:
        from repro.analysis.sanitizer import attach_sanitizer
        attach_sanitizer(hierarchy)
    if tracer is not None:
        from repro.obs.trace import attach_tracer
        attach_tracer(hierarchy, tracer)
    tele = Telemetry(sample_every=32).attach(hierarchy) if telemetry else None
    simulator = Simulator(hierarchy, check_values=check_values,
                          telemetry=tele)
    workload = make_workload(workload_name, config.nodes, hierarchy.amap,
                             seed=seed)
    result = simulator.run(workload, instructions, seed=seed, warmup=warmup,
                           batched=batched)
    perf = PerfModel(config.ooo).summarize(result)
    snap = result_snapshot(result, perf.cycles)
    if tele is not None:
        snap["hists"] = tele.hists.summaries()
    return snap


class TestPinnedMatrixEquivalence:
    @pytest.mark.parametrize("config_name", BENCH_CONFIGS)
    @pytest.mark.parametrize("workload_name", BENCH_WORKLOADS)
    def test_bit_identical(self, config_name, workload_name):
        config = _config(config_name)
        scalar = _simulate(config, workload_name, False)
        batched = _simulate(config, workload_name, True)
        assert scalar == batched

    def test_bit_identical_with_telemetry(self):
        # histogram digests are part of the contract when telemetry is on
        for config_name in ("Base-2L", "D2M-NS-R"):
            config = _config(config_name)
            scalar = _simulate(config, "mix1", False, telemetry=True)
            batched = _simulate(config, "mix1", True, telemetry=True)
            assert scalar == batched, config_name

    def test_bit_identical_without_warmup(self):
        config = _config("D2M-FS")
        scalar = _simulate(config, "tpcc", False, warmup=0)
        batched = _simulate(config, "tpcc", True, warmup=0)
        assert scalar == batched

    def test_bit_identical_without_value_checking(self):
        # check_values=False is the production sweep configuration
        config = _config("D2M-NS-R")
        scalar = _simulate(config, "swaptions", False, check_values=False)
        batched = _simulate(config, "swaptions", True, check_values=False)
        assert scalar == batched


class TestTracerGating:
    def test_sanitizer_stays_bit_identical(self):
        # the sanitizer is an unsafe tracer: the batched run goes
        # all-slow, and must still match the sanitized scalar run
        scalar = _simulate(d2m_ns_r(2), "fft", False, sanitize=True,
                           instructions=600, warmup=200)
        batched = _simulate(d2m_ns_r(2), "fft", True, sanitize=True,
                            instructions=600, warmup=200)
        assert scalar == batched

    def test_unsafe_tracer_sees_every_access(self):
        # a TraceRecorder has no fast_path_safe marker, so the batched
        # driver must delegate every access to the protocol — the
        # recorder's access counter must match the scalar run's exactly
        from repro.obs.trace import TraceRecorder
        scalar_rec = TraceRecorder()
        scalar = _simulate(d2m_fs(2), "fft", False, tracer=scalar_rec,
                           instructions=600, warmup=200)
        batched_rec = TraceRecorder()
        batched = _simulate(d2m_fs(2), "fft", True, tracer=batched_rec,
                            instructions=600, warmup=200)
        assert scalar == batched
        assert scalar_rec.access_index > 0
        assert batched_rec.access_index == scalar_rec.access_index

    def test_telemetry_is_fast_path_safe(self):
        assert Telemetry().fast_path_safe is True

    def test_fanout_safety_is_conjunction(self):
        from repro.obs.trace import TracerFanout, TraceRecorder
        safe = Telemetry()
        assert TracerFanout([safe]).fast_path_safe is True
        assert TracerFanout([safe, TraceRecorder()]).fast_path_safe is False


class TestFastPathEngagement:
    def test_fast_path_actually_skips_the_protocol(self):
        # guard against a silently all-slow batched driver: on a cache-
        # friendly workload most accesses must bypass protocol.access
        config = d2m_ns_r(2)
        hierarchy = build_hierarchy(config)
        protocol = hierarchy.protocol
        calls = 0
        original = protocol.access

        def counting(*args, **kwargs):
            nonlocal calls
            calls += 1
            return original(*args, **kwargs)

        protocol.access = counting
        simulator = Simulator(hierarchy)
        workload = make_workload("swaptions", config.nodes, hierarchy.amap,
                                 seed=3)
        result = simulator.run(workload, 2000, seed=3, batched=True)
        assert calls < result.accesses / 2

    def test_baseline_fast_path_engages_too(self):
        config = base_2l(2)
        hierarchy = build_hierarchy(config)
        calls = 0
        original = hierarchy.access

        def counting(*args, **kwargs):
            nonlocal calls
            calls += 1
            return original(*args, **kwargs)

        hierarchy.access = counting
        simulator = Simulator(hierarchy)
        workload = make_workload("swaptions", config.nodes, hierarchy.amap,
                                 seed=3)
        result = simulator.run(workload, 2000, seed=3, batched=True)
        assert calls < result.accesses / 2


class TestFallbacks:
    def test_generic_chunker_matches_generate_batch(self):
        # a workload without generate_batch goes through the scalar
        # chunker; the stream must be identical either way
        from repro.sim.batch import _chunks_from_scalar
        workload = make_workload("tpcc", 2, seed=5)
        via_batch = [tuple(map(tuple, c))
                     for c in workload.generate_batch(500, 5, chunk=128)]
        via_scalar = [tuple(map(tuple, c))
                      for c in _chunks_from_scalar(workload, 500, 5, 128)]
        assert via_batch == via_scalar

    def test_hierarchy_without_handles_falls_back_to_scalar(self):
        # a machine with no fastpath_handles contract must still run
        # (through the scalar loop) when batched=True is requested
        config = base_2l(2)
        hierarchy = build_hierarchy(config)

        class NoHandles:
            """Hides fastpath_handles, delegates everything else."""

            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                if name == "fastpath_handles":
                    raise AttributeError(name)
                return getattr(self._inner, name)

        wrapped = NoHandles(hierarchy)
        simulator = Simulator(wrapped)
        workload = make_workload("tpcc", config.nodes, hierarchy.amap,
                                 seed=3)
        result = simulator.run(workload, 400, seed=3, batched=True)
        assert result.instructions == 400
