"""Unit tests for the perf-tracking benchmark harness."""

import json

from repro.common.params import all_configs
from repro.sim import bench


def _config(name):
    return {c.name: c for c in all_configs()}[name]


class TestReferenceAdapter:
    def test_hides_fast_path(self):
        from repro.mem.address import AddressMap
        from repro.workloads.registry import make_workload
        workload = make_workload("tpcc", 4, AddressMap(), seed=1)
        assert hasattr(workload, "generate_fast")
        wrapped = bench.ReferenceWorkload(workload)
        assert not hasattr(wrapped, "generate_fast")
        assert wrapped.translate(0, 0x5000) == workload.translate(0, 0x5000)


class TestEquivalenceGate:
    def test_optimized_matches_reference(self):
        # the core promise: the fast driver path produces bit-identical
        # statistics to the reference generator
        for name in ("Base-2L", "D2M-NS-R"):
            config = _config(name)
            optimized = bench._run_once(config, "tpcc", 600, 300)
            reference = bench._run_once(config, "tpcc", 600, 300,
                                        reference=True)
            assert optimized == reference, name

    def test_snapshot_is_json_serializable(self):
        snap = bench._run_once(_config("Base-2L"), "swaptions", 400, 200)
        round_tripped = json.loads(json.dumps(snap))
        assert round_tripped == snap
        assert snap["instructions"] == 400
        assert snap["cycles"] > 0


class TestReport:
    def test_quick_report_schema(self, tmp_path, monkeypatch):
        # shrink the pinned budgets so the schema test stays fast; the
        # real budgets are exercised by the CI bench-smoke job
        monkeypatch.setattr(bench, "QUICK_INSTRUCTIONS", 400)
        monkeypatch.setattr(bench, "QUICK_WARMUP", 200)
        report = bench.run_bench(quick=True, check_equivalence=False)
        assert report["schema"] == 1
        assert report["mode"] == "quick"
        assert report["matrix"]["seed"] == bench.BENCH_SEED
        assert len(report["cells"]) == (
            len(bench.BENCH_CONFIGS) * len(bench.BENCH_WORKLOADS))
        for cell in report["cells"]:
            assert cell["ips"] > 0
            phases = cell["phases_s"]
            assert set(phases) == {"generate", "hierarchy", "stats"}
        assert report["geomean_ips"] > 0
        for key in ("python", "platform", "cpu_count", "commit"):
            assert key in report["env"]
        # the recorded baseline compares full-budget runs only
        assert "speedup_vs_baseline" not in report
        assert report["equivalence_checked"] is False

        out = tmp_path / "bench.json"
        bench.write_report(report, str(out))
        assert json.loads(out.read_text()) == report

    def test_baseline_cells_cover_matrix(self):
        ips = bench.SEED_BASELINE["ips"]
        want = {f"{c}/{w}" for c in bench.BENCH_CONFIGS
                for w in bench.BENCH_WORKLOADS}
        assert set(ips) == want
        assert all(v > 0 for v in ips.values())

    def test_geomean(self):
        assert bench._geomean([4.0, 9.0]) == 6.0
        assert bench._geomean([]) == 0.0
