"""Unit tests for the perf-tracking benchmark harness."""

import json

from repro.common.params import all_configs
from repro.sim import bench


def _config(name):
    return {c.name: c for c in all_configs()}[name]


class TestReferenceAdapter:
    def test_hides_fast_path(self):
        from repro.mem.address import AddressMap
        from repro.workloads.registry import make_workload
        workload = make_workload("tpcc", 4, AddressMap(), seed=1)
        assert hasattr(workload, "generate_fast")
        wrapped = bench.ReferenceWorkload(workload)
        assert not hasattr(wrapped, "generate_fast")
        assert wrapped.translate(0, 0x5000) == workload.translate(0, 0x5000)


class TestEquivalenceGate:
    def test_optimized_matches_reference(self):
        # the core promise: the fast driver path produces bit-identical
        # statistics to the reference generator
        for name in ("Base-2L", "D2M-NS-R"):
            config = _config(name)
            optimized = bench._run_once(config, "tpcc", 600, 300)
            reference = bench._run_once(config, "tpcc", 600, 300,
                                        reference=True)
            assert optimized == reference, name

    def test_batched_matches_scalar(self):
        # the batched driver's promise: bit-identical to the scalar loop
        for name in ("Base-2L", "D2M-NS-R"):
            config = _config(name)
            scalar = bench._run_once(config, "tpcc", 600, 300)
            batched = bench._run_once(config, "tpcc", 600, 300,
                                      batched=True)
            assert scalar == batched, name

    def test_snapshot_is_json_serializable(self):
        snap = bench._run_once(_config("Base-2L"), "swaptions", 400, 200)
        round_tripped = json.loads(json.dumps(snap))
        assert round_tripped == snap
        assert snap["instructions"] == 400
        assert snap["cycles"] > 0


class TestReport:
    def test_quick_report_schema(self, tmp_path, monkeypatch):
        # shrink the pinned budgets so the schema test stays fast; the
        # real budgets are exercised by the CI bench-smoke job
        monkeypatch.setattr(bench, "QUICK_INSTRUCTIONS", 400)
        monkeypatch.setattr(bench, "QUICK_WARMUP", 200)
        report = bench.run_bench(quick=True, check_equivalence=False)
        assert report["schema"] == 1
        assert report["mode"] == "quick"
        assert report["matrix"]["seed"] == bench.BENCH_SEED
        assert len(report["cells"]) == (
            len(bench.BENCH_CONFIGS) * len(bench.BENCH_WORKLOADS))
        for cell in report["cells"]:
            assert cell["ips"] > 0
            phases = cell["phases_s"]
            assert set(phases) == {"generate", "hierarchy", "stats"}
            # the batched headline carries a scalar sub-report with the
            # same phase split, so the batched-vs-scalar gap is explicit
            scalar = cell["scalar"]
            assert scalar["ips"] > 0
            assert set(scalar["phases_s"]) == {"generate", "hierarchy",
                                               "stats"}
        assert report["geomean_ips"] > 0
        for key in ("python", "platform", "cpu_count", "commit"):
            assert key in report["env"]
        # the recorded baseline compares full-budget runs only
        assert "speedup_vs_baseline" not in report
        assert report["equivalence_checked"] is False

        out = tmp_path / "bench.json"
        bench.write_report(report, str(out))
        assert json.loads(out.read_text()) == report

    def test_baseline_cells_cover_matrix(self):
        ips = bench.SEED_BASELINE["ips"]
        want = {f"{c}/{w}" for c in bench.BENCH_CONFIGS
                for w in bench.BENCH_WORKLOADS}
        assert set(ips) == want
        assert all(v > 0 for v in ips.values())

    def test_geomean(self):
        assert bench._geomean([4.0, 9.0]) == 6.0
        assert bench._geomean([]) == 0.0

    def test_scalar_view_swaps_headline(self):
        cell = {
            "config": "Base-2L", "workload": "tpcc",
            "ips": 200.0, "phases_s": {"generate": 1.0}, "simulate_s": 2.0,
            "scalar": {"ips": 50.0, "phases_s": {"generate": 3.0},
                       "simulate_s": 4.0},
            "equivalent": True,
        }
        report = {"cells": [cell], "geomean_ips": 200.0,
                  "baseline": {"geomean_ips": 25.0},
                  "speedup_vs_baseline": 8.0}
        view = bench.scalar_view(report)
        got = view["cells"][0]
        assert got["ips"] == 50.0
        assert got["phases_s"] == {"generate": 3.0}
        assert got["simulate_s"] == 4.0
        assert got["batched"]["ips"] == 200.0
        assert "scalar" not in got
        assert got["equivalent"] is True
        assert view["geomean_ips"] == 50.0
        assert view["speedup_vs_baseline"] == 2.0
        assert view["driver"] == "scalar"
        # the original report is untouched
        assert report["cells"][0]["ips"] == 200.0
        assert "scalar" in report["cells"][0]

    def test_scalar_view_passes_old_reports_through(self):
        report = {"cells": [{"config": "Base-2L", "workload": "tpcc",
                             "ips": 40.0}], "geomean_ips": 40.0}
        view = bench.scalar_view(report)
        assert view["cells"][0]["ips"] == 40.0
        assert "batched" not in view["cells"][0]


class TestProfileBench:
    def test_aggregate_digest_and_persisted_records(self, tmp_path,
                                                    monkeypatch):
        from repro.obs.profile import validate_profile

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(bench, "QUICK_INSTRUCTIONS", 400)
        monkeypatch.setattr(bench, "QUICK_WARMUP", 200)
        aggregate = bench.profile_bench(quick=True)
        assert validate_profile(aggregate) == []
        cells = len(bench.BENCH_CONFIGS) * len(bench.BENCH_WORKLOADS)
        assert aggregate["chunks"] >= cells  # every cell contributed
        assert aggregate["classes"]  # D2M configs rank real classes
        # the per-cell digests landed in the cached run records
        records = [json.loads(p.read_text())
                   for p in sorted((tmp_path / "runs").glob("*.json"))]
        assert len(records) == cells
        for record in records:
            assert validate_profile(record["profile"]) == []
            assert record["profile"], record["config"]
