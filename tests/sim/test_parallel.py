"""Unit tests for the parallel run executor."""

import pytest

from repro.common.params import base_2l
from repro.sim.parallel import RunFailure, execute_runs, job_count
from repro.sim.runner import RunSpec


def _specs(*workloads):
    return [RunSpec(base_2l(2), name, 1_000, seed=3) for name in workloads]


# module-level so the process pool can pickle them by qualified name
def _name_of(spec):
    return spec.workload


def _explode(spec):
    raise ValueError(f"no such run: {spec.workload}")


def _explode_on_lu(spec):
    if spec.workload == "lu":
        raise ValueError("lu is cursed")
    return spec.workload


def _chatty(spec):
    print(f"stdout from {spec.workload}")
    import sys
    print(f"stderr from {spec.workload}", file=sys.stderr)
    return spec.workload


def _chatty_explode(spec):
    print(f"partial output from {spec.workload}")
    raise ValueError("boom")


class TestJobCount:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert job_count(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert job_count() == 7

    def test_cpu_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert job_count() >= 1

    def test_zero_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert job_count(0) == 7


class TestSerialPath:
    def test_results_indexed_by_spec(self):
        results, failures = execute_runs(_specs("water", "lu"), _name_of,
                                         jobs=1)
        assert results == {0: "water", 1: "lu"}
        assert failures == []

    def test_failure_isolation(self):
        results, failures = execute_runs(_specs("water", "lu", "fft"),
                                         _explode_on_lu, jobs=1)
        assert results == {0: "water", 2: "fft"}
        [failure] = failures
        assert isinstance(failure, RunFailure)
        assert failure.workload == "lu"
        assert "cursed" in failure.error
        assert "lu" in str(failure)

    def test_callbacks_fire_in_order(self):
        seen = []
        landed = []
        execute_runs(
            _specs("water", "lu"), _name_of, jobs=1,
            progress=lambda done, total, spec: seen.append(
                (done, total, spec.workload)),
            on_result=lambda index, payload: landed.append(payload),
        )
        assert seen == [(1, 2, "water"), (2, 2, "lu")]
        assert landed == ["water", "lu"]

    def test_empty_specs(self):
        assert execute_runs([], _name_of, jobs=4) == ({}, [])


class TestParallelPath:
    def test_two_workers_all_results(self):
        results, failures = execute_runs(_specs("water", "lu", "fft"),
                                         _name_of, jobs=2)
        assert results == {0: "water", 1: "lu", 2: "fft"}
        assert failures == []

    def test_two_workers_failures_do_not_kill_sweep(self):
        results, failures = execute_runs(_specs("water", "lu", "fft"),
                                         _explode_on_lu, jobs=2)
        assert results == {0: "water", 2: "fft"}
        assert [f.workload for f in failures] == ["lu"]

    def test_all_failures_reported(self):
        results, failures = execute_runs(_specs("water", "lu"), _explode,
                                         jobs=2)
        assert results == {}
        assert sorted(f.workload for f in failures) == ["lu", "water"]


class TestWorkerOutputCapture:
    def test_output_replayed_as_contiguous_blocks(self, capfd):
        results, failures = execute_runs(_specs("water", "lu", "fft"),
                                         _chatty, jobs=2)
        assert failures == []
        assert len(results) == 3
        err = capfd.readouterr().err
        # each run's stdout+stderr arrives as one labelled block, never
        # interleaved with another run's lines
        for workload in ("water", "lu", "fft"):
            block = (f"-- output from {workload} on Base-2L (seed 3) --\n"
                     f"stdout from {workload}\nstderr from {workload}")
            assert block in err

    def test_on_output_callback_overrides_default(self, capfd):
        captured = {}
        execute_runs(_specs("water", "lu"), _chatty, jobs=2,
                     on_output=lambda index, text: captured.update(
                         {index: text}))
        assert set(captured) == {0, 1}
        assert "stdout from water" in captured[0]
        assert capfd.readouterr().err == ""  # default printer suppressed

    def test_failed_run_output_still_surfaces(self, capfd):
        results, failures = execute_runs(_specs("water", "lu"),
                                         _chatty_explode, jobs=2)
        assert results == {}
        assert len(failures) == 2
        assert all("ValueError: boom" in f.error for f in failures)
        err = capfd.readouterr().err
        assert "partial output from water" in err
        assert "partial output from lu" in err

    def test_serial_path_does_not_capture(self, capfd):
        execute_runs(_specs("water"), _chatty, jobs=1)
        out = capfd.readouterr()
        assert "stdout from water" in out.out  # passes straight through
        assert "-- output from" not in out.err


class TestFailureSummary:
    def test_summary_is_exception_line(self):
        failure = RunFailure("water", "D2M-FS", 1, error=(
            "Traceback (most recent call last):\n"
            "  File \"x.py\", line 1, in run\n"
            "ValueError: boom\n"))
        assert failure.summary() == "ValueError: boom"
        assert "ValueError: boom" in str(failure)

    def test_summary_skips_indented_forensic_report(self):
        """Sanitizer violations carry a multi-line indented report; the
        summary must be the exception line, not the report's last row."""
        failure = RunFailure("water", "D2M-FS", 1, error=(
            "Traceback (most recent call last):\n"
            "  File \"x.py\", line 1, in run\n"
            "SanitizerViolation: sanitizer: line 0x40 has 2 masters\n"
            "  detected after access #7 (event seq 9, 9 events recorded)\n"
            "  last events touching region 0x1:\n"
            "    [     0] access           node=0 region=0x1\n"))
        assert failure.summary() == (
            "SanitizerViolation: sanitizer: line 0x40 has 2 masters")

    def test_empty_error(self):
        assert RunFailure("water", "D2M-FS", 1, error="").summary() == "?"


# ------------------------------------------------------------------ heartbeat
# Regression: sweeps used to hand workers their heartbeat directory by
# mutating process-global os.environ[REPRO_PROGRESS_DIR]; two concurrent
# sweeps in one process raced and crossed their heartbeat dirs.  The
# directory is now threaded explicitly through execute_runs.

def _beat_from_env(spec):
    from repro.obs.progress import Heartbeat

    hb = Heartbeat.from_env(f"{spec.workload}/{spec.config.name}")
    if hb is not None:
        hb.finish(accesses=1)
    return spec.workload


def _probe_env(spec):
    import os

    from repro.obs.progress import PROGRESS_DIR_ENV

    return os.environ.get(PROGRESS_DIR_ENV, "")


class TestHeartbeatDirThreading:
    def test_serial_path_uses_explicit_dir(self, tmp_path, monkeypatch):
        from repro.obs.progress import PROGRESS_DIR_ENV

        monkeypatch.delenv(PROGRESS_DIR_ENV, raising=False)
        hb_dir = tmp_path / "hb"
        hb_dir.mkdir()
        results, failures = execute_runs(_specs("water"), _beat_from_env,
                                         jobs=1,
                                         heartbeat_dir=str(hb_dir))
        assert not failures
        assert list(hb_dir.glob("hb-*.json"))
        # the explicit dir never leaks into the process environment
        import os
        assert PROGRESS_DIR_ENV not in os.environ

    def test_two_overlapping_serial_sweeps_stay_separate(self, tmp_path,
                                                         monkeypatch):
        import threading

        from repro.obs.progress import PROGRESS_DIR_ENV

        monkeypatch.setenv(PROGRESS_DIR_ENV, "/nonexistent-outer-default")
        dirs = [tmp_path / "a", tmp_path / "b"]
        for d in dirs:
            d.mkdir()
        seen = {}

        def _sweep(index):
            def _task(spec):
                from repro.obs.progress import resolve_heartbeat_dir

                seen.setdefault(index, set()).add(resolve_heartbeat_dir())
                return spec.workload

            execute_runs(_specs("water", "lu", "fft"), _task, jobs=1,
                         heartbeat_dir=str(dirs[index]))

        threads = [threading.Thread(target=_sweep, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen[0] == {str(dirs[0])}
        assert seen[1] == {str(dirs[1])}
        # the env var stayed the untouched outermost default throughout
        import os
        assert os.environ[PROGRESS_DIR_ENV] == "/nonexistent-outer-default"

    def test_workers_inherit_dir_via_initializer(self, tmp_path,
                                                 monkeypatch):
        from repro.obs.progress import PROGRESS_DIR_ENV

        monkeypatch.delenv(PROGRESS_DIR_ENV, raising=False)
        hb_dir = tmp_path / "hb"
        hb_dir.mkdir()
        results, failures = execute_runs(_specs("water", "lu"), _probe_env,
                                         jobs=2,
                                         heartbeat_dir=str(hb_dir))
        assert not failures
        assert set(results.values()) == {str(hb_dir)}
        import os
        assert PROGRESS_DIR_ENV not in os.environ

    def test_none_falls_back_to_env(self, tmp_path, monkeypatch):
        from repro.obs.progress import PROGRESS_DIR_ENV

        monkeypatch.setenv(PROGRESS_DIR_ENV, str(tmp_path))
        results, _ = execute_runs(_specs("water"), _probe_env, jobs=1)
        assert results[0] == str(tmp_path)
