"""Unit tests for the analytic OoO performance model."""

import pytest

from repro.common.params import OoOModel
from repro.common.types import HitLevel
from repro.sim.perf import PerfModel
from repro.sim.simulator import LatencyBucket, SimResult


def result_with(core_instr, instr_lat, data_lat):
    return SimResult(
        name="x", instructions=sum(core_instr.values()),
        accesses=0, stats=None, buckets={},
        core_instructions=core_instr,
        core_instr_miss_latency=instr_lat,
        core_data_miss_latency=data_lat,
    )


class TestPerfModel:
    def test_base_cpi_only(self):
        model = PerfModel(OoOModel(base_cpi=0.8))
        summary = model.summarize(result_with({0: 1000}, {}, {}))
        assert summary.cycles == pytest.approx(800)

    def test_instruction_stalls_barely_hidden(self):
        ooo = OoOModel(base_cpi=1.0, instr_hide_fraction=0.0,
                       data_hide_fraction=0.6)
        model = PerfModel(ooo)
        with_i = model.summarize(result_with({0: 1000}, {0: 500}, {}))
        with_d = model.summarize(result_with({0: 1000}, {}, {0: 500}))
        assert with_i.cycles > with_d.cycles  # same latency, I hurts more

    def test_slowest_core_dominates(self):
        model = PerfModel(OoOModel())
        summary = model.summarize(result_with(
            {0: 1000, 1: 1000}, {1: 10_000}, {}))
        fast = model.summarize(result_with({0: 1000, 1: 1000}, {}, {}))
        assert summary.cycles > fast.cycles
        assert summary.per_core_cycles[1] == summary.cycles

    def test_speedup_over(self):
        model = PerfModel(OoOModel())
        slow = model.summarize(result_with({0: 1000}, {0: 1000}, {}))
        fast = model.summarize(result_with({0: 1000}, {}, {}))
        assert fast.speedup_over(slow) > 1.0
        assert slow.speedup_over(fast) < 1.0

    def test_empty_result(self):
        summary = PerfModel(OoOModel()).summarize(result_with({}, {}, {}))
        assert summary.cycles == 0.0

    def test_speedup_over_zero_cycle_runs(self):
        model = PerfModel(OoOModel())
        empty = model.summarize(result_with({}, {}, {}))
        busy = model.summarize(result_with({0: 1000}, {}, {}))
        # a zero-cycle run is infinitely fast relative to a real one...
        assert empty.speedup_over(busy) == float("inf")
        # ...the real one is infinitely slow relative to it...
        assert busy.speedup_over(empty) == 0.0
        # ...and two zero-cycle runs are equal, not 0/0.
        assert empty.speedup_over(empty) == 1.0

    def test_single_core_cpi(self):
        model = PerfModel(OoOModel(base_cpi=1.25))
        summary = model.summarize(result_with({0: 1000}, {}, {}))
        assert summary.cpi == pytest.approx(summary.cycles / 1000)
        assert summary.cpi == pytest.approx(1.25)

    def test_cpi_on_imbalanced_cores(self):
        # Regression: cpi must aggregate the per-core cycle totals, not
        # scale the slowest core by the core count.  Core 0 does 1000
        # instructions with no stalls (1000 cycles), core 1 does 1000
        # instructions plus 4000 un-hidden instruction-stall cycles
        # (5000 cycles): 6000 total cycles over 2000 instructions.
        ooo = OoOModel(base_cpi=1.0, instr_hide_fraction=0.0)
        model = PerfModel(ooo)
        summary = model.summarize(result_with(
            {0: 1000, 1: 1000}, {1: 4000}, {}))
        assert summary.cycles == pytest.approx(5000)  # critical path
        assert summary.cpi == pytest.approx(3.0)      # (1000+5000)/2000
        # the old formula (cycles * n_cores / instructions) gave 5.0
        assert summary.cpi != pytest.approx(
            summary.cycles * 2 / summary.instructions)
