"""Unit tests for the run harness."""

import os

from repro.common.params import base_2l, d2m_ns_r
from repro.sim.runner import (
    instruction_budget,
    run_matrix,
    run_workload,
    warmup_budget,
)


class TestBudgets:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "1234")
        assert instruction_budget() == 1234
        monkeypatch.setenv("REPRO_WARMUP", "99")
        assert warmup_budget(1000) == 99

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_INSTRUCTIONS", raising=False)
        monkeypatch.delenv("REPRO_WARMUP", raising=False)
        assert instruction_budget() > 0
        assert warmup_budget(1000) == 500


class TestRunWorkload:
    def test_outcome_metrics(self):
        out = run_workload(base_2l(4), "water", instructions=2_000, seed=2)
        assert out.result.instructions == 2_000
        assert out.msgs_per_ki > 0
        assert out.perf.cycles > 0
        assert out.edp > 0
        assert out.cache_energy_pj < out.energy_pj  # DRAM excluded

    def test_d2m_outcome_has_private_fraction(self):
        out = run_workload(d2m_ns_r(4), "water", instructions=2_000, seed=2)
        assert 0 <= out.private_miss_fraction <= 1
        assert out.d2m_msgs_per_ki >= 0

    def test_matrix_shape(self):
        matrix = run_matrix([base_2l(4)], ["water", "lu"],
                            instructions=1_500, seed=2)
        assert set(matrix) == {"water", "lu"}
        assert set(matrix["water"]) == {"Base-2L"}
