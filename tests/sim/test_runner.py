"""Unit tests for the run harness."""

import os

from repro.common.params import base_2l, d2m_ns_r
from repro.sim.runner import (
    instruction_budget,
    run_matrix,
    run_workload,
    warmup_budget,
)


class TestBudgets:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "1234")
        assert instruction_budget() == 1234
        monkeypatch.setenv("REPRO_WARMUP", "99")
        assert warmup_budget(1000) == 99

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_INSTRUCTIONS", raising=False)
        monkeypatch.delenv("REPRO_WARMUP", raising=False)
        assert instruction_budget() > 0
        assert warmup_budget(1000) == 500


class TestRunWorkload:
    def test_outcome_metrics(self):
        out = run_workload(base_2l(4), "water", instructions=2_000, seed=2)
        assert out.result.instructions == 2_000
        assert out.msgs_per_ki > 0
        assert out.perf.cycles > 0
        assert out.edp > 0
        assert out.cache_energy_pj < out.energy_pj  # DRAM excluded

    def test_d2m_outcome_has_private_fraction(self):
        out = run_workload(d2m_ns_r(4), "water", instructions=2_000, seed=2)
        assert 0 <= out.private_miss_fraction <= 1
        assert out.d2m_msgs_per_ki >= 0

    def test_matrix_shape(self):
        matrix = run_matrix([base_2l(4)], ["water", "lu"],
                            instructions=1_500, seed=2)
        assert set(matrix) == {"water", "lu"}
        assert set(matrix["water"]) == {"Base-2L"}

    def test_matrix_forwards_check_values(self):
        matrix = run_matrix([base_2l(2)], ["water"], instructions=1_000,
                            seed=2, check_values=True)
        assert matrix["water"]["Base-2L"].spec.check_values is True

    def test_matrix_parallel_matches_serial(self):
        serial = run_matrix([base_2l(2)], ["water", "lu"],
                            instructions=1_000, seed=2, jobs=1)
        parallel = run_matrix([base_2l(2)], ["water", "lu"],
                              instructions=1_000, seed=2, jobs=2)
        for workload in serial:
            ours = parallel[workload]["Base-2L"]
            theirs = serial[workload]["Base-2L"]
            assert ours.perf.cycles == theirs.perf.cycles
            assert ours.msgs_per_ki == theirs.msgs_per_ki
            assert ours.edp == theirs.edp

    def test_explicit_warmup_pins_the_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP", "900")
        pinned = run_workload(base_2l(2), "water", instructions=1_000,
                              seed=2, warmup=500)
        monkeypatch.delenv("REPRO_WARMUP")
        default = run_workload(base_2l(2), "water", instructions=1_000,
                               seed=2)
        assert pinned.spec.warmup == 500
        assert pinned.perf.cycles == default.perf.cycles
