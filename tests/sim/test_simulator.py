"""Unit tests for the simulation driver: warmup, MSHR, recording."""

from repro.common.params import base_2l, d2m_fs
from repro.common.types import Access, AccessKind, HitLevel
from repro.core.hierarchy import build_hierarchy
from repro.sim.simulator import LatencyBucket, Simulator
from repro.workloads.registry import make_workload


class _ScriptedWorkload:
    """Replays a fixed access list (one core)."""

    def __init__(self, accesses, hierarchy):
        from repro.mem.address import AddressSpace, PageAllocator
        self._accesses = accesses
        self._space = AddressSpace(hierarchy.amap, 0, PageAllocator())

    def translate(self, core, vaddr):
        return self._space.translate(vaddr)

    def generate(self, n_instructions, seed):
        issued = 0
        for acc in self._accesses:
            if acc.is_instruction:
                if issued >= n_instructions:
                    return
                issued += 1
            yield acc


def ifetch(addr):
    return Access(0, AccessKind.IFETCH, addr)


def load(addr):
    return Access(0, AccessKind.LOAD, addr)


class TestLatencyBucket:
    def test_mean(self):
        b = LatencyBucket()
        b.add(10)
        b.add(20)
        assert b.mean == 15
        assert LatencyBucket().mean == 0.0


class TestMSHR:
    def test_hit_under_miss_is_late(self):
        h = build_hierarchy(base_2l(1))
        # two loads of the same cold line back-to-back: the second one
        # arrives while the first miss is outstanding
        trace = [ifetch(0x100), load(0x8000), ifetch(0x110), load(0x8008)]
        sim = Simulator(h)
        result = sim.run(_ScriptedWorkload(trace, h), n_instructions=2)
        assert result.bucket(False, HitLevel.MEMORY).count == 1
        late = result.bucket(False, HitLevel.LATE)
        assert late.count == 1
        assert 0 < late.mean < result.bucket(False, HitLevel.MEMORY).mean

    def test_hit_after_completion_is_plain(self):
        h = build_hierarchy(base_2l(1))
        # 400 instructions of spacing let the miss complete
        trace = [load(0x8000)] + [ifetch(0x100 + 16 * i)
                                  for i in range(400)] + [load(0x8008)]
        sim = Simulator(h)
        result = sim.run(_ScriptedWorkload([ifetch(0x100)] + trace, h),
                         n_instructions=401)
        assert result.bucket(False, HitLevel.LATE).count == 0
        assert result.bucket(False, HitLevel.L1).count == 1


class TestMSHRBookkeeping:
    """Drive ``_apply_mshr`` directly — it is the unit-testable surface."""

    def _sim(self):
        return Simulator(build_hierarchy(base_2l(1)))

    def _miss(self, latency=100):
        from repro.common.types import AccessResult
        return AccessResult(HitLevel.MEMORY, latency)

    def _hit(self, latency=1):
        from repro.common.types import AccessResult
        return AccessResult(HitLevel.L1, latency)

    def test_repeat_miss_coalesces(self):
        # A second L1 *miss* to a line with an outstanding fill must not
        # time a whole new fill: the request is already in flight, so it
        # completes as a late hit with the residual latency.
        sim = self._sim()
        first = sim._apply_mshr(0, line=7, now=0.0, outcome=self._miss(100))
        assert first.level is HitLevel.MEMORY
        again = sim._apply_mshr(0, line=7, now=40.0, outcome=self._miss(100))
        assert again.level is HitLevel.LATE
        assert again.latency == 60  # residual, not a fresh 100
        # ...and it did not extend or restart the outstanding fill
        assert sim._outstanding[(0, 7)] == 100.0

    def test_completed_entry_cleared_on_touch(self):
        sim = self._sim()
        sim._apply_mshr(0, line=7, now=0.0, outcome=self._miss(100))
        out = sim._apply_mshr(0, line=7, now=150.0, outcome=self._hit())
        assert out.level is HitLevel.L1  # fill long done: plain hit
        assert (0, 7) not in sim._outstanding

    def test_periodic_prune_drops_completed_entries(self):
        sim = self._sim()
        # one entry whose fill completes at t=10, one still outstanding
        sim._apply_mshr(0, line=1, now=0.0, outcome=self._miss(10))
        sim._apply_mshr(0, line=2, now=0.0, outcome=self._miss(10_000))
        sim._core_time[0] = 500.0
        sim._mshr_inserts = sim._MSHR_PRUNE_PERIOD - 1
        sim._apply_mshr(0, line=3, now=500.0, outcome=self._miss(100))
        assert (0, 1) not in sim._outstanding  # completed: pruned
        assert (0, 2) in sim._outstanding      # still in flight: kept
        assert (0, 3) in sim._outstanding      # the triggering insert
        assert sim._mshr_inserts == 0


class TestWarmup:
    def test_warmup_excluded_from_metrics(self):
        h = build_hierarchy(base_2l(4))
        workload = make_workload("swaptions", 4, h.amap, seed=3)
        result = Simulator(h).run(workload, 2_000, seed=3, warmup=2_000)
        assert result.instructions == 2_000
        total_stats = (h.stats.get("l1.i.accesses")
                       + h.stats.get("l1.d.accesses"))
        assert total_stats == result.accesses  # warm-up was reset away

    def test_roi_boundary_exact(self):
        # ROI starts at the first access *after* the instruction that
        # exhausts the warm-up budget: the final warm-up instruction and
        # any accesses before the next one belong entirely to warm-up.
        h = build_hierarchy(base_2l(1))
        trace = [ifetch(0x100), load(0x8000),
                 ifetch(0x110), load(0x8008),
                 ifetch(0x120), load(0x8010),
                 ifetch(0x130), load(0x8018)]
        result = Simulator(h).run(_ScriptedWorkload(trace, h),
                                  n_instructions=3, warmup=1)
        # warm-up consumed ifetch(0x100); recording starts at load(0x8000)
        assert result.instructions == 3
        assert result.accesses == 7
        assert sum(b.count for b in result.buckets.values()) == 7
        assert result.count_where(instr=True) == 3
        assert result.count_where(instr=False) == 4

    def test_roi_stats_match_recorded_accesses(self):
        # hierarchy stats are reset at the ROI boundary, so the L1
        # access counters must equal exactly the recorded accesses
        h = build_hierarchy(base_2l(4))
        workload = make_workload("tpcc", 4, h.amap, seed=2)
        result = Simulator(h).run(workload, 1_500, seed=2, warmup=700)
        assert result.instructions == 1_500
        total = h.stats.get("l1.i.accesses") + h.stats.get("l1.d.accesses")
        assert total == result.accesses

    def test_zero_warmup_records_everything(self):
        h = build_hierarchy(base_2l(1))
        trace = [ifetch(0x100), load(0x8000), ifetch(0x110)]
        result = Simulator(h).run(_ScriptedWorkload(trace, h),
                                  n_instructions=2, warmup=0)
        assert result.instructions == 2
        assert result.accesses == 3

    def test_warmup_lowers_miss_ratio(self):
        def run(warmup):
            h = build_hierarchy(base_2l(4))
            workload = make_workload("swaptions", 4, h.amap, seed=3)
            return Simulator(h).run(workload, 3_000, seed=3,
                                    warmup=warmup).miss_ratio(False)
        assert run(6_000) < run(0)


class TestValueChecking:
    def test_oracle_runs_on_d2m(self):
        h = build_hierarchy(d2m_fs(4))
        workload = make_workload("water", 4, h.amap, seed=5)
        result = Simulator(h, check_values=True).run(workload, 3_000, seed=5)
        assert result.instructions == 3_000


class TestDerivedMetrics:
    def test_ratios_consistent(self):
        h = build_hierarchy(base_2l(4))
        workload = make_workload("bodytrack", 4, h.amap, seed=7)
        result = Simulator(h).run(workload, 4_000, seed=7, warmup=2_000)
        for instr in (True, False):
            assert 0 <= result.miss_ratio(instr) <= 1
            assert 0 <= result.late_hit_ratio(instr) <= 1
        assert result.avg_miss_latency() > 0
        assert result.count_where(instr=True) + result.count_where(
            instr=False) == result.accesses
