"""Unit tests for the simulation driver: warmup, MSHR, recording."""

from repro.common.params import base_2l, d2m_fs
from repro.common.types import Access, AccessKind, HitLevel
from repro.core.hierarchy import build_hierarchy
from repro.sim.simulator import LatencyBucket, Simulator
from repro.workloads.registry import make_workload


class _ScriptedWorkload:
    """Replays a fixed access list (one core)."""

    def __init__(self, accesses, hierarchy):
        from repro.mem.address import AddressSpace, PageAllocator
        self._accesses = accesses
        self._space = AddressSpace(hierarchy.amap, 0, PageAllocator())

    def translate(self, core, vaddr):
        return self._space.translate(vaddr)

    def generate(self, n_instructions, seed):
        issued = 0
        for acc in self._accesses:
            if acc.is_instruction:
                if issued >= n_instructions:
                    return
                issued += 1
            yield acc


def ifetch(addr):
    return Access(0, AccessKind.IFETCH, addr)


def load(addr):
    return Access(0, AccessKind.LOAD, addr)


class TestLatencyBucket:
    def test_mean(self):
        b = LatencyBucket()
        b.add(10)
        b.add(20)
        assert b.mean == 15
        assert LatencyBucket().mean == 0.0


class TestMSHR:
    def test_hit_under_miss_is_late(self):
        h = build_hierarchy(base_2l(1))
        # two loads of the same cold line back-to-back: the second one
        # arrives while the first miss is outstanding
        trace = [ifetch(0x100), load(0x8000), ifetch(0x110), load(0x8008)]
        sim = Simulator(h)
        result = sim.run(_ScriptedWorkload(trace, h), n_instructions=2)
        assert result.bucket(False, HitLevel.MEMORY).count == 1
        late = result.bucket(False, HitLevel.LATE)
        assert late.count == 1
        assert 0 < late.mean < result.bucket(False, HitLevel.MEMORY).mean

    def test_hit_after_completion_is_plain(self):
        h = build_hierarchy(base_2l(1))
        # 400 instructions of spacing let the miss complete
        trace = [load(0x8000)] + [ifetch(0x100 + 16 * i)
                                  for i in range(400)] + [load(0x8008)]
        sim = Simulator(h)
        result = sim.run(_ScriptedWorkload([ifetch(0x100)] + trace, h),
                         n_instructions=401)
        assert result.bucket(False, HitLevel.LATE).count == 0
        assert result.bucket(False, HitLevel.L1).count == 1


class TestWarmup:
    def test_warmup_excluded_from_metrics(self):
        h = build_hierarchy(base_2l(4))
        workload = make_workload("swaptions", 4, h.amap, seed=3)
        result = Simulator(h).run(workload, 2_000, seed=3, warmup=2_000)
        assert result.instructions == 2_000
        total_stats = (h.stats.get("l1.i.accesses")
                       + h.stats.get("l1.d.accesses"))
        assert total_stats == result.accesses  # warm-up was reset away

    def test_warmup_lowers_miss_ratio(self):
        def run(warmup):
            h = build_hierarchy(base_2l(4))
            workload = make_workload("swaptions", 4, h.amap, seed=3)
            return Simulator(h).run(workload, 3_000, seed=3,
                                    warmup=warmup).miss_ratio(False)
        assert run(6_000) < run(0)


class TestValueChecking:
    def test_oracle_runs_on_d2m(self):
        h = build_hierarchy(d2m_fs(4))
        workload = make_workload("water", 4, h.amap, seed=5)
        result = Simulator(h, check_values=True).run(workload, 3_000, seed=5)
        assert result.instructions == 3_000


class TestDerivedMetrics:
    def test_ratios_consistent(self):
        h = build_hierarchy(base_2l(4))
        workload = make_workload("bodytrack", 4, h.amap, seed=7)
        result = Simulator(h).run(workload, 4_000, seed=7, warmup=2_000)
        for instr in (True, False):
            assert 0 <= result.miss_ratio(instr) <= 1
            assert 0 <= result.late_hit_ratio(instr) <= 1
        assert result.avg_miss_latency() > 0
        assert result.count_where(instr=True) + result.count_where(
            instr=False) == result.accesses
