"""Longitudinal bench trends (tools/bench_history) and its lint kin."""

import json

from tools.bench_history import history_rows, history_table, main
from tools.lint_repro import check_timeline_schema, check_tracked_bytecode


def bench_report(geomean, mode="quick", date="2026-08-01", **overrides):
    report = {
        "schema": 1, "date": date, "mode": mode,
        "matrix": {"configs": ["Base-2L"], "workloads": ["tpcc"],
                   "seed": 1, "instructions": 20_000, "warmup": 10_000,
                   "repetitions": 3},
        "env": {}, "cells": [{"config": "Base-2L", "workload": "tpcc",
                              "ips": geomean}],
        "geomean_ips": geomean,
        "equivalence_checked": True, "equivalence_ok": True,
    }
    report.update(overrides)
    return report


def write_reports(tmp_path, *reports):
    paths = []
    for index, report in enumerate(reports):
        path = tmp_path / f"BENCH_2026-08-0{index + 1}.json"
        path.write_text(json.dumps(report))
        paths.append(path)
    return paths


class TestHistoryRows:
    def test_deltas_chain_between_comparable_reports(self, tmp_path):
        paths = write_reports(tmp_path,
                              bench_report(100.0),
                              bench_report(110.0, date="2026-08-02"),
                              bench_report(99.0, date="2026-08-03"))
        rows = history_rows(paths)
        assert rows[0]["delta"] is None  # first of its kind
        assert abs(rows[1]["delta"] - 0.10) < 1e-9
        assert abs(rows[2]["delta"] - (99.0 / 110.0 - 1.0)) < 1e-9

    def test_mode_or_matrix_change_breaks_the_chain(self, tmp_path):
        full = bench_report(200.0, mode="full", date="2026-08-02")
        paths = write_reports(tmp_path, bench_report(100.0), full)
        rows = history_rows(paths)
        # a full report never compares against a quick one
        assert rows[1]["delta"] is None

    def test_foreign_and_torn_json_skipped(self, tmp_path):
        good = tmp_path / "BENCH_2026-08-01.json"
        good.write_text(json.dumps(bench_report(100.0)))
        (tmp_path / "BENCH_torn.json").write_text("{not json")
        (tmp_path / "BENCH_other.json").write_text('{"schema": 1}')
        rows = history_rows(sorted(tmp_path.glob("BENCH_*.json")))
        assert len(rows) == 1

    def test_unchecked_equivalence_is_none(self, tmp_path):
        report = bench_report(100.0, equivalence_checked=False)
        paths = write_reports(tmp_path, report)
        assert history_rows(paths)[0]["equivalence"] is None


class TestHistoryTable:
    def test_renders_every_row(self, tmp_path):
        paths = write_reports(tmp_path, bench_report(100.0),
                              bench_report(150.0, date="2026-08-02"))
        table = history_table(history_rows(paths))
        assert "geomean ips" in table
        assert "+50.0%" in table
        assert table.count("BENCH_") == 2

    def test_empty_history_says_so(self):
        assert "no BENCH_" in history_table([])


class TestMain:
    def test_table_and_json_outputs(self, tmp_path, capsys):
        write_reports(tmp_path, bench_report(100.0))
        assert main(["--root", str(tmp_path)]) == 0
        assert "BENCH_2026-08-01.json" in capsys.readouterr().out
        assert main(["--root", str(tmp_path), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["geomean_ips"] == 100.0


class TestTimelineSchemaLint:
    def test_records_and_bare_timelines_both_validate(self, tmp_path):
        (tmp_path / "record.json").write_text(json.dumps(
            {"workload": "water", "timeline": {"epochs": 0}}))
        (tmp_path / "bare.json").write_text(json.dumps({"epochs": 0}))
        assert check_timeline_schema([tmp_path]) == []

    def test_malformed_series_fail(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps(
            {"workload": "water", "timeline": {"epochs": "3"}}))
        problems = check_timeline_schema([tmp_path])
        assert any("not an int" in p for p in problems)

    def test_empty_match_is_a_problem(self, tmp_path):
        assert check_timeline_schema([tmp_path / "absent"])


class TestTrackedBytecode:
    def test_repo_tracks_no_bytecode(self):
        # vacuous outside a git checkout; a hard failure inside one
        assert check_tracked_bytecode() == []
