"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import ARTIFACTS, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "D2M-NS-R" in out
        assert "tpcc" in out
        assert "fig7" in out


class TestRun:
    def test_runs_and_prints_summary(self, capsys):
        assert main(["run", "--config", "base-2l", "--workload", "water",
                     "--instructions", "1500"]) == 0
        out = capsys.readouterr().out
        assert "water on Base-2L" in out
        assert "L1-D miss ratio" in out

    def test_d2m_summary_has_extra_rows(self, capsys):
        assert main(["run", "--config", "d2m-ns-r", "--workload", "water",
                     "--instructions", "1500"]) == 0
        out = capsys.readouterr().out
        assert "private misses" in out
        assert "NS hits" in out

    def test_profile_attrib_prints_the_ranking(self, capsys):
        assert main(["run", "--config", "d2m-ns-r", "--workload", "water",
                     "--instructions", "1500", "--profile-attrib"]) == 0
        out = capsys.readouterr().out
        assert "slow-tail attribution" in out
        assert "fallback accesses" in out

    def test_unknown_config_rejected(self, capsys):
        assert main(["run", "--config", "nope", "--workload", "water"]) == 2

    def test_unknown_workload_rejected(self):
        assert main(["run", "--config", "base-2l",
                     "--workload", "nope"]) == 2


class TestReport:
    def test_structural_tables(self, capsys):
        assert main(["report", "tables"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_artifact(self):
        assert main(["report", "nope"]) == 2

    def test_every_artifact_is_mapped(self):
        import importlib
        for module_name in ARTIFACTS.values():
            module = importlib.import_module(
                f"repro.experiments.{module_name}")
            assert hasattr(module, "main")


class TestSweep:
    def test_sweep_small(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--workloads", "water",
                     "--instructions", "1200"]) == 0
        assert "matrix ready" in capsys.readouterr().out

    def test_sweep_rejects_typo(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--workloads", "watr"]) == 2
        assert "watr" in capsys.readouterr().err

    def test_sweep_rejects_empty_selection(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--workloads", " , "]) == 2
        assert "no workloads" in capsys.readouterr().err

    def test_sweep_jobs_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--workloads", "water",
                     "--instructions", "1200", "--jobs", "1"]) == 0
        assert "matrix ready" in capsys.readouterr().out

    def test_sweep_sanitize_flags(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--workloads", "water",
                     "--instructions", "1200", "--jobs", "1",
                     "--sanitize", "--sanitize-every", "300",
                     "--check-invariants"]) == 0
        assert "matrix ready" in capsys.readouterr().out


class TestVersion:
    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_help_epilog_carries_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "repro version" in capsys.readouterr().out


class TestTrace:
    def test_trace_quick_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--quick", "--out", str(out)]) == 0
        assert "events recorded" in capsys.readouterr().out
        records = [json.loads(line)
                   for line in out.read_text().splitlines()]
        assert records
        assert all({"seq", "t", "kind"} <= set(r) for r in records)

    def test_trace_chrome_format(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "--quick", "--format", "chrome",
                     "--workload", "water", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_trace_window_bounds_export(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--quick", "--window", "50",
                     "--out", str(out)]) == 0
        assert len(out.read_text().splitlines()) == 50

    def test_trace_baseline_warns_empty(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--quick", "--config", "base-2l",
                     "--out", str(out)]) == 0
        assert "no protocol tracer hooks" in capsys.readouterr().err
        assert out.read_text() == ""

    def test_trace_unknown_config(self, tmp_path):
        assert main(["trace", "--config", "nope"]) == 2

    def test_trace_job_exports_served_spans(self, tmp_path, capsys,
                                            monkeypatch):
        from repro.serve.telemetry import Span, SpanRing

        ring = SpanRing(tmp_path / "queue" / "spans")
        for index, stage in enumerate(("validate", "enqueue", "claim")):
            ring.record(Span(trace="c0ffee" + "0" * 10, job="job42",
                             stage=stage, ts=50.0 + index, dur_s=0.1))
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "--job", "job42",
                     "--serve-cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "3 span(s)" in out and "c0ffee" in out
        # the per-job default filename keeps CI artifacts from clobbering
        doc = json.loads((tmp_path / "trace_job_job42.json").read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in slices] == \
            ["validate", "enqueue", "claim"]

    def test_trace_job_without_spans_exits_two(self, tmp_path, capsys):
        assert main(["trace", "--job", "nosuchjob",
                     "--serve-cache", str(tmp_path)]) == 2
        assert "no spans" in capsys.readouterr().err

    def test_trace_job_honors_out(self, tmp_path):
        from repro.serve.telemetry import Span, SpanRing

        ring = SpanRing(tmp_path / "queue" / "spans")
        ring.record(Span(trace="t" * 16, job="j1", stage="respond",
                         ts=1.0, dur_s=0.0))
        out = tmp_path / "custom.json"
        assert main(["trace", "--job", "j1", "--serve-cache",
                     str(tmp_path), "--out", str(out)]) == 0
        assert json.loads(out.read_text())["traceEvents"]


class TestReportHist:
    def test_missing_record_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["report", "--hist", "--workload", "water",
                     "--instructions", "1200"]) == 2
        assert "no cached run record" in capsys.readouterr().err

    def test_hist_after_sweep(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--workloads", "water",
                     "--instructions", "1200", "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["report", "--hist", "--workload", "water",
                     "--instructions", "1200"]) == 0
        out = capsys.readouterr().out
        assert "Telemetry histograms: water on D2M-NS-R" in out
        assert "latency.L1" in out
        assert "p99" in out

    def test_report_without_artifact_or_hist(self, capsys):
        assert main(["report"]) == 2
        assert "artifact" in capsys.readouterr().err


class TestRunHist:
    def test_run_hist_prints_digests(self, capsys):
        assert main(["run", "--config", "d2m-ns-r", "--workload", "water",
                     "--instructions", "1500", "--hist"]) == 0
        out = capsys.readouterr().out
        assert "Telemetry histograms" in out
        assert "mshr.residency" in out


class TestLogJson:
    def test_log_json_writes_cli_events(self, tmp_path, capsys):
        from repro.obs import runlog

        log = tmp_path / "run.log"
        try:
            assert main(["--log-json", str(log), "run",
                         "--config", "base-2l", "--workload", "water",
                         "--instructions", "1500"]) == 0
        finally:
            runlog.configure("")  # drop the global logger for later tests
        events = [json.loads(line)["event"]
                  for line in log.read_text().splitlines()]
        assert events[0] == "cli.start"
        assert "run.start" in events
        assert "run.end" in events
        assert events[-1] == "cli.end"


def _bench_payload(ips_scale=1.0):
    cells = [{"config": config, "workload": workload,
              "ips": round(50_000.0 * ips_scale, 1),
              "phases_s": {"generate": 0.2, "hierarchy": 0.5},
              "simulate_s": 0.7, "equivalent": True}
             for config in ("Base-2L", "D2M-NS-R")
             for workload in ("tpcc", "mix1")]
    return {"schema": 1, "date": "2026-08-06", "mode": "full",
            "matrix": {"configs": ["Base-2L", "D2M-NS-R"],
                       "workloads": ["tpcc", "mix1"], "seed": 1,
                       "instructions": 20_000, "warmup": 10_000,
                       "repetitions": 3},
            "env": {}, "cells": cells,
            "geomean_ips": round(50_000.0 * ips_scale, 1),
            "equivalence_checked": True, "equivalence_ok": True}


class TestCompare:
    def test_identical_payloads_exit_zero(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_2026-01-01.json"
        baseline.write_text(json.dumps(_bench_payload()))
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(_bench_payload()))
        assert main(["compare", str(candidate),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "ips.Base-2L/tpcc" in out  # per-cell table, ok rows included
        assert ": OK (" in out

    def test_ips_drop_exits_three_with_cell_table(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_2026-01-01.json"
        baseline.write_text(json.dumps(_bench_payload()))
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(_bench_payload(ips_scale=0.85)))
        assert main(["compare", str(candidate),
                     "--baseline", str(baseline)]) == 3
        out = capsys.readouterr().out
        assert "ips.D2M-NS-R/mix1" in out
        assert "REGRESSION" in out
        assert "-15.0%" in out

    def test_threshold_flag_relaxes_the_gate(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_2026-01-01.json"
        baseline.write_text(json.dumps(_bench_payload()))
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(_bench_payload(ips_scale=0.85)))
        assert main(["compare", str(candidate),
                     "--baseline", str(baseline),
                     "--ips-threshold", "20"]) == 0

    def test_missing_candidate_exits_two(self, tmp_path, monkeypatch,
                                         capsys):
        monkeypatch.chdir(tmp_path)  # no BENCH_*.json anywhere in here
        assert main(["compare", "--baseline", "auto"]) == 2
        assert "no candidate" in capsys.readouterr().err

    def test_bad_baseline_path_exits_two(self, tmp_path, capsys):
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(_bench_payload()))
        assert main(["compare", str(candidate),
                     "--baseline", str(tmp_path / "nope.json")]) == 2
        assert "compare:" in capsys.readouterr().err

    def test_json_out_writes_report(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_2026-01-01.json"
        baseline.write_text(json.dumps(_bench_payload()))
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(_bench_payload(ips_scale=0.85)))
        report_path = tmp_path / "report.json"
        assert main(["compare", str(candidate), "--baseline", str(baseline),
                     "--json-out", str(report_path)]) == 3
        doc = json.loads(report_path.read_text())
        assert doc["worst"] == "regression"
        assert any(d["severity"] == "regression" for d in doc["deltas"])


class TestDashboard:
    def test_writes_self_contained_html(self, tmp_path, monkeypatch,
                                        capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "dash.html"
        assert main(["dashboard", "--workloads", "water",
                     "--instructions", "1200", "--out", str(out)]) == 0
        assert "comparison view(s) ->" in capsys.readouterr().out
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "Speedup over Base-2L" in html
        assert "Side by side" in html  # default d2m-ns-r vs base-2l view

    def test_unknown_config_exits_two(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["dashboard", "--config", "nope"]) == 2

    def test_unknown_workload_exits_two(self, tmp_path, monkeypatch,
                                        capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["dashboard", "--workloads", "watr"]) == 2
        assert "watr" in capsys.readouterr().err


class TestRunCheckingFlags:
    def test_run_reports_sanitizer_and_invariants(self, capsys):
        assert main(["run", "--config", "d2m-fs", "--workload", "water",
                     "--instructions", "1500", "--sanitize",
                     "--check-invariants"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer             clean" in out
        assert "final invariants      ok" in out

    def test_run_without_flags_prints_no_check_rows(self, capsys):
        assert main(["run", "--config", "d2m-fs", "--workload", "water",
                     "--instructions", "1500"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer" not in out
        assert "final invariants" not in out


class TestTimeline:
    def test_run_with_timeline_prints_sparklines(self, capsys):
        assert main(["run", "--config", "d2m-fs", "--workload", "water",
                     "--instructions", "1500", "--timeline",
                     "--epoch", "128"]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out and "epochs x 128 accesses" in out

    def test_timeline_from_the_run_cache(self, tmp_path, monkeypatch,
                                         capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--workloads", "water",
                     "--instructions", "1200", "--jobs", "1",
                     "--timeline", "--epoch", "128"]) == 0
        capsys.readouterr()
        assert main(["timeline", "--workload", "water",
                     "--config", "D2M-FS", "--instructions", "1200"]) == 0
        assert "epochs x 128 accesses" in capsys.readouterr().out

    def test_timeline_json_and_rebucket(self, tmp_path, capsys):
        timeline = {"epochs": 4, "epoch_accesses": 64, "roi_epoch": 2,
                    "series": {"instructions": [1, 2, 3, 4],
                               "accesses": [64, 64, 64, 64]}}
        path = tmp_path / "tl.json"
        path.write_text(json.dumps(timeline))
        assert main(["timeline", str(path), "--format", "json",
                     "--epoch", "128"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["epochs"] == 2
        assert payload["series"]["instructions"] == [3, 7]

    def test_timeline_html_page(self, tmp_path, capsys):
        record = {"workload": "water", "timeline": {
            "epochs": 3, "epoch_accesses": 64, "roi_epoch": 1,
            "series": {"instructions": [1, 2, 3],
                       "accesses": [64, 64, 64]}}}
        path = tmp_path / "record.json"
        path.write_text(json.dumps(record))
        out = tmp_path / "tl.html"
        assert main(["timeline", str(path), "--format", "html",
                     "--out", str(out)]) == 0
        assert "Phase timeline" in out.read_text()

    def test_uncached_cell_is_a_clean_error(self, tmp_path, monkeypatch,
                                            capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["timeline", "--workload", "water",
                     "--config", "D2M-FS", "--instructions", "1200"]) == 2
        assert "repro sweep" in capsys.readouterr().err

    def test_malformed_timeline_fails_the_schema(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"epochs": 3, "series": {}}))
        assert main(["timeline", str(path)]) == 2
        assert capsys.readouterr().err


class TestBenchHistory:
    def test_history_table_from_reports(self, tmp_path, monkeypatch,
                                        capsys):
        monkeypatch.chdir(tmp_path)
        report = {"schema": 1, "date": "2026-08-01", "mode": "quick",
                  "matrix": {}, "env": {}, "cells": [],
                  "geomean_ips": 123.0}
        (tmp_path / "BENCH_2026-08-01.json").write_text(json.dumps(report))
        assert main(["bench", "--history"]) == 0
        assert "BENCH_2026-08-01.json" in capsys.readouterr().out
