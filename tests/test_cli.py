"""Tests for the command-line interface."""

from repro.cli import ARTIFACTS, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "D2M-NS-R" in out
        assert "tpcc" in out
        assert "fig7" in out


class TestRun:
    def test_runs_and_prints_summary(self, capsys):
        assert main(["run", "--config", "base-2l", "--workload", "water",
                     "--instructions", "1500"]) == 0
        out = capsys.readouterr().out
        assert "water on Base-2L" in out
        assert "L1-D miss ratio" in out

    def test_d2m_summary_has_extra_rows(self, capsys):
        assert main(["run", "--config", "d2m-ns-r", "--workload", "water",
                     "--instructions", "1500"]) == 0
        out = capsys.readouterr().out
        assert "private misses" in out
        assert "NS hits" in out

    def test_unknown_config_rejected(self, capsys):
        assert main(["run", "--config", "nope", "--workload", "water"]) == 2

    def test_unknown_workload_rejected(self):
        assert main(["run", "--config", "base-2l",
                     "--workload", "nope"]) == 2


class TestReport:
    def test_structural_tables(self, capsys):
        assert main(["report", "tables"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_artifact(self):
        assert main(["report", "nope"]) == 2

    def test_every_artifact_is_mapped(self):
        import importlib
        for module_name in ARTIFACTS.values():
            module = importlib.import_module(
                f"repro.experiments.{module_name}")
            assert hasattr(module, "main")


class TestSweep:
    def test_sweep_small(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--workloads", "water",
                     "--instructions", "1200"]) == 0
        assert "matrix ready" in capsys.readouterr().out

    def test_sweep_rejects_typo(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--workloads", "watr"]) == 2
        assert "watr" in capsys.readouterr().err

    def test_sweep_rejects_empty_selection(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--workloads", " , "]) == 2
        assert "no workloads" in capsys.readouterr().err

    def test_sweep_jobs_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--workloads", "water",
                     "--instructions", "1200", "--jobs", "1"]) == 0
        assert "matrix ready" in capsys.readouterr().out

    def test_sweep_sanitize_flags(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--workloads", "water",
                     "--instructions", "1200", "--jobs", "1",
                     "--sanitize", "--sanitize-every", "300",
                     "--check-invariants"]) == 0
        assert "matrix ready" in capsys.readouterr().out


class TestRunCheckingFlags:
    def test_run_reports_sanitizer_and_invariants(self, capsys):
        assert main(["run", "--config", "d2m-fs", "--workload", "water",
                     "--instructions", "1500", "--sanitize",
                     "--check-invariants"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer             clean" in out
        assert "final invariants      ok" in out

    def test_run_without_flags_prints_no_check_rows(self, capsys):
        assert main(["run", "--config", "d2m-fs", "--workload", "water",
                     "--instructions", "1500"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer" not in out
        assert "final invariants" not in out
