"""The public package surface stays importable and coherent."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_factory_names_match_table3(self):
        names = [c.name for c in repro.all_configs()]
        assert names == ["Base-2L", "Base-3L", "D2M-FS", "D2M-NS",
                         "D2M-NS-R"]

    def test_workload_names_nonempty(self):
        assert len(repro.workload_names()) >= 25

    def test_build_hierarchy_dispatch(self):
        assert isinstance(repro.build_hierarchy(repro.base_2l(2)),
                          repro.BaselineHierarchy)
        assert isinstance(repro.build_hierarchy(repro.d2m_fs(2)),
                          repro.D2MHierarchy)

    def test_readme_quickstart_runs(self):
        base = repro.run_workload(repro.base_2l(2), "water",
                                  instructions=1_000)
        d2m = repro.run_workload(repro.d2m_ns_r(2), "water",
                                 instructions=1_000)
        assert base.perf.cycles > 0 and d2m.perf.cycles > 0
