"""Sanitizer <-> spec parity: one corruption class, caught at both layers.

Each case seeds the *same* class of invariant violation twice — once
into a real warmed-up machine (where the full invariant walk and the
incremental sanitizer must both reject it) and once into the model
checker's abstract state (where the matching ``_d2m_check`` invariant
must fire).  This pins the sanitizer's shadow model and the declarative
spec's invariants to each other: a rule dropped from either side breaks
the pairing.
"""

import pytest

from tests.helpers import TraceDriver, small_config
from repro.analysis import SanitizerViolation, attach_sanitizer
from repro.common.errors import InvariantViolation
from repro.common.params import d2m_fs
from repro.core.datastore import LineRole
from repro.core.hierarchy import build_hierarchy
from repro.core.invariants import (
    _region_nodes,
    check_invariants,
    llc_slots,
    machine_regions,
)
from repro.verify.model import LLC, MEM, _d2m_check


def warmed_machine(seed):
    config = small_config(d2m_fs(4))
    hierarchy = build_hierarchy(config)
    TraceDriver(hierarchy, seed=seed).random_burst(1500, cores=4)
    sanitizer = attach_sanitizer(hierarchy)
    return hierarchy.protocol, sanitizer


def all_slots_of_line(protocol, line):
    found = []
    for node in protocol.nodes:
        for array in node.arrays():
            for _s, _w, slot in array:
                if slot.line == line:
                    found.append(slot)
    for _key, slot in llc_slots(protocol):
        if slot.line == line:
            found.append(slot)
    return found


def assert_machine_rejects(protocol, sanitizer, pregion, line):
    with pytest.raises(InvariantViolation):
        check_invariants(protocol)
    sanitizer.note("test.corruption", region=pregion, line=line)
    with pytest.raises(SanitizerViolation):
        sanitizer.flush()


class TestCorruptionParity:
    def test_duplicate_master_swmr(self):
        # Machine: promote every cached copy of one line to MASTER.
        protocol, sanitizer = warmed_machine(seed=11)
        target = None
        for pregion in machine_regions(protocol):
            for node in protocol.nodes:
                for array in node.arrays():
                    for _s, _w, slot in array.lines_of_region(pregion):
                        if len(all_slots_of_line(protocol, slot.line)) >= 2:
                            target = (pregion, slot.line)
                            break
        assert target is not None, "no doubly-cached line to corrupt"
        pregion, line = target
        for slot in all_slots_of_line(protocol, line):
            slot.role = LineRole.MASTER
        assert_machine_rejects(protocol, sanitizer, pregion, line)

        # Model: a node master that holds no actual copy is the same
        # single-writer bookkeeping break.
        bad = ((True, frozenset({0}), True),
               ((0, frozenset(), frozenset({MEM})),))
        assert _d2m_check(bad)[0] == "swmr"

    def test_pb_private_mismatch_md_tracking(self):
        # Machine: add a second presence bit to a private region.
        protocol, sanitizer = warmed_machine(seed=12)
        found = None
        for pregion in machine_regions(protocol):
            for node, holder in _region_nodes(protocol, pregion):
                if holder.private:
                    found = (pregion, node)
                    break
            if found:
                break
        assert found is not None, "no private region to corrupt"
        pregion, node = found
        protocol.md3.peek(pregion).pb.add(
            (node.node + 1) % len(protocol.nodes))
        line = protocol.amap.line_of_region(pregion, 0)
        assert_machine_rejects(protocol, sanitizer, pregion, line)

        # Model: private region with |PB| > 1 is the same invariant.
        bad = ((True, frozenset({0, 1}), True),
               ((None, frozenset(), frozenset({MEM})),))
        kind, detail = _d2m_check(bad)
        assert kind == "md-tracking"
        assert "private" in detail

    def test_untracked_cached_data_md_tracking(self):
        # Machine: drop a region's MD3 entry while its lines stay cached.
        protocol, sanitizer = warmed_machine(seed=13)
        target = None
        for pregion in machine_regions(protocol):
            if (protocol.md3.peek(pregion) is not None
                    and _region_nodes(protocol, pregion)):
                target = pregion
                break
        assert target is not None, "no tracked region with cached data"
        protocol.md3.drop(target)
        line = protocol.amap.line_of_region(target, 0)
        assert_machine_rejects(protocol, sanitizer, target, line)

        # Model: cached data without an MD3 entry.
        bad = ((False, frozenset(), False),
               ((LLC, frozenset(), frozenset({LLC})),))
        assert _d2m_check(bad)[0] == "md-tracking"
