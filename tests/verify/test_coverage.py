"""Transition coverage: signature matching, directed probes, the gate."""

import pytest

from repro.verify.coverage import (
    CoverageReport,
    RunSignals,
    TransitionCoverage,
    coverage_from_signals,
    directed_signals,
    run_coverage,
    sig_matches,
    signals_from_stats,
)
from repro.verify.spec import D2M_SPEC, SPECS


class TestSignatureMatching:
    def test_stat_suffix_match(self):
        signals = RunSignals(label="r", stats={"d2m.events.C"})
        assert sig_matches("stat:events.C", signals)
        assert sig_matches("stat:d2m.events.C", signals)
        assert not sig_matches("stat:events.B", signals)

    def test_stat_suffix_is_dot_anchored(self):
        # "events.C" must not match "other_events.C"-style keys where the
        # suffix crosses a component boundary.
        signals = RunSignals(label="r", stats={"d2m.xevents.C"})
        assert not sig_matches("stat:events.C", signals)

    def test_emit_kind_and_detail_prefix(self):
        signals = RunSignals(label="r",
                             emits={("llc.fill", "master bypass")})
        assert sig_matches("emit:llc.fill", signals)
        assert sig_matches("emit:llc.fill:master", signals)
        assert not sig_matches("emit:llc.fill:replica", signals)
        assert not sig_matches("emit:llc.evict", signals)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            sig_matches("trace:whatever", RunSignals(label="r"))

    def test_signals_from_stats_drops_zeroes(self):
        signals = signals_from_stats({"a.b": 3.0, "a.c": 0.0}, label="x")
        assert signals.stats == {"a.b"}

    def test_merge_unions_both_channels(self):
        a = RunSignals(label="a", stats={"s1"}, emits={("k", "d")})
        b = RunSignals(label="b", stats={"s2"})
        a.merge(b)
        assert a.stats == {"s1", "s2"}
        assert a.emits == {("k", "d")}


class TestReportShape:
    @staticmethod
    def _cov(tid, exercised, cold=None):
        return TransitionCoverage(tid=tid, protocol="d2m",
                                  exercised=exercised, via="", cold=cold)

    def test_cold_annotation_gates_findings(self):
        report = CoverageReport(runs=["r"], transitions=[
            self._cov("d2m.a", True),
            self._cov("d2m.b", False, cold="needs 3 nodes"),
            self._cov("d2m.c", False),
        ])
        assert [t.tid for t in report.unexercised] == ["d2m.b", "d2m.c"]
        assert [t.tid for t in report.findings] == ["d2m.c"]
        assert not report.ok

    def test_to_json_summary(self):
        report = CoverageReport(runs=["r"], transitions=[
            self._cov("d2m.a", True),
            self._cov("d2m.b", False, cold="why"),
        ])
        doc = report.to_json()
        assert doc["summary"] == {"total": 2, "exercised": 1, "cold": 1,
                                  "findings": [], "ok": True}
        assert doc["runs"] == ["r"]
        assert all(set(t) == {"tid", "protocol", "exercised", "via",
                              "cold", "ok"}
                   for t in doc["transitions"])

    def test_coverage_from_signals_covers_every_spec_transition(self):
        report = coverage_from_signals([RunSignals(label="empty")])
        expected = sum(len(s.transitions) for s in SPECS.values())
        assert len(report.transitions) == expected


class TestDirectedProbes:
    """The hand-built probe traces hit the rare-event transitions that
    random matrix traffic cannot reach (full round-trip through real
    hierarchies with the tracer attached)."""

    @pytest.fixture(scope="class")
    def signals(self):
        return {s.label: s for s in directed_signals()}

    def test_d2m_probe_hits_rare_events(self, signals):
        d2m = signals["directed:d2m"]
        for key in ("events.D1", "md2.prunes", "evictions.llc_shared",
                    "md.md1_cross_hits"):
            assert any(flat.endswith("." + key) or flat == key
                       for flat in d2m.stats), (key, sorted(d2m.stats))

    def test_nsr_probe_hits_replication_path(self, signals):
        nsr = signals["directed:ns-r"]
        assert sig_matches("stat:ns.replications", nsr)
        assert sig_matches("stat:events.F", nsr)

    def test_traced_runs_capture_emits(self, signals):
        assert signals["directed:d2m"].emits
        assert signals["directed:ns-r"].emits

    def test_directed_runs_alone_cover_rare_transitions(self, signals):
        report = coverage_from_signals(list(signals.values()))
        rare = [t for t in D2M_SPEC.transitions
                if any(sig.startswith(("stat:events.D1",
                                       "stat:ns.replications"))
                       for sig in t.coverage)]
        assert rare, "spec lost its rare-event transitions"
        by_tid = {t.tid: t for t in report.transitions}
        for transition in rare:
            assert by_tid[transition.tid].exercised, transition.tid


@pytest.mark.slow
class TestAcceptanceGate:
    def test_full_pass_exercises_every_transition(self):
        report = run_coverage(quick=True)
        assert report.findings == [], [t.tid for t in report.findings]
        summary = report.to_json()["summary"]
        assert summary["exercised"] == summary["total"]
