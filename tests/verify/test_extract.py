"""AST transition extractor: fact recovery and spec reconciliation."""

import ast

from repro.verify.extract import (
    Extraction,
    _FactVisitor,
    extract_facts,
    reconcile,
)
from repro.verify.spec import SPECS, WAIVERS, Evidence, Transition


def facts_of(source: str, module: str = "m"):
    visitor = _FactVisitor(module)
    visitor.visit(ast.parse(source))
    return visitor


class TestFactExtraction:
    def test_send_devent_stat_emit_facts(self):
        src = (
            "class P:\n"
            "    def step(self):\n"
            "        self._send(MessageKind.GET_MD, a, b)\n"
            "        self.events.add('D1')\n"
            "        self.stats.add('upgrades')\n"
            "        self.tracer.emit('llc.fill', node=0)\n"
        )
        visitor = facts_of(src)
        got = {fact for (_m, qual, fact) in visitor.facts
               if qual == "P.step"}
        assert got == {"send:GET_MD", "devent:D1", "stat:upgrades",
                       "emit:llc.fill"}

    def test_enum_writes_collected_but_compares_skipped(self):
        src = (
            "def f(slot):\n"
            "    if slot.state is CoherenceState.MODIFIED:\n"
            "        slot.state = CoherenceState.SHARED\n"
            "    slot.role = LineRole.MASTER\n"
        )
        visitor = facts_of(src)
        got = {fact for (_m, _q, fact) in visitor.facts}
        assert got == {"state:SHARED", "role:MASTER"}

    def test_non_protocol_stats_ignored(self):
        visitor = facts_of(
            "def f(stats):\n"
            "    stats.add('l1.d.accesses')\n"  # bookkeeping, not a transition
            "    stats.add('md2.prunes')\n"
        )
        got = {fact for (_m, _q, fact) in visitor.facts}
        assert got == {"stat:md2.prunes"}

    def test_module_level_tables_are_not_transitions(self):
        visitor = facts_of("ROLE = LineRole.MASTER\n")
        assert visitor.facts == set()

    def test_functions_recorded_with_qualnames(self):
        visitor = facts_of(
            "class A:\n"
            "    def f(self):\n"
            "        def inner():\n"
            "            pass\n"
        )
        assert {"A.f", "A.f.inner"} <= visitor.functions


def _extraction(facts, functions):
    return Extraction(facts=set(facts), functions=functions)


def _transition(tid, evidence):
    return Transition(tid=tid, state="S", event="e", guard="g",
                      actions=("a",), next_state="S", evidence=evidence)


class TestReconcile:
    def test_clean_when_spec_and_facts_agree(self):
        ext = _extraction({("m", "P.f", "stat:upgrades")}, {"m": {"P.f"}})
        t = _transition("t1", (Evidence("m", "P.f", ("stat:upgrades",)),))
        assert reconcile([t], {}, ext) == []

    def test_undeclared_fact_is_a_finding(self):
        ext = _extraction({("m", "P.f", "stat:upgrades")}, {"m": {"P.f"}})
        t = _transition("t1", (Evidence("m", "P.f"),))
        findings = reconcile([t], {}, ext)
        assert [f.kind for f in findings] == ["undeclared"]
        assert findings[0].fact == "stat:upgrades"

    def test_waiver_suppresses_undeclared(self):
        ext = _extraction({("m", "P.f", "stat:upgrades")}, {"m": {"P.f"}})
        t = _transition("t1", (Evidence("m", "P.f"),))
        waivers = {("m", "P.f", "stat:upgrades"): "known helper"}
        assert reconcile([t], waivers, ext) == []

    def test_missing_evidence_when_spec_overclaims(self):
        ext = _extraction(set(), {"m": {"P.f"}})
        t = _transition("t1", (Evidence("m", "P.f", ("send:INVALIDATE",)),))
        findings = reconcile([t], {}, ext)
        assert [f.kind for f in findings] == ["missing-evidence"]
        assert "t1" in findings[0].detail

    def test_missing_anchor_when_function_gone(self):
        ext = _extraction(set(), {"m": set()})
        t = _transition("t1", (Evidence("m", "P.gone"),))
        findings = reconcile([t], {}, ext)
        assert [f.kind for f in findings] == ["missing-anchor"]

    def test_stale_waiver_flagged(self):
        ext = _extraction(set(), {"m": {"P.f"}})
        waivers = {("m", "P.f", "emit:gone"): "used to exist"}
        findings = reconcile([], waivers, ext)
        assert [f.kind for f in findings] == ["stale-waiver"]
        assert "used to exist" in findings[0].detail


class TestRepoReconciliation:
    """The acceptance gate: the real spec matches the real code."""

    def test_zero_unwaived_discrepancies(self):
        extraction = extract_facts()
        transitions = [t for spec in SPECS.values()
                       for t in spec.transitions]
        findings = reconcile(transitions, WAIVERS, extraction)
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_every_coverage_signature_well_formed(self):
        for spec in SPECS.values():
            for t in spec.transitions:
                assert t.coverage, f"{t.tid} has no coverage signature"
                for sig in t.coverage:
                    assert sig.startswith(("stat:", "emit:")), (t.tid, sig)

    def test_transition_ids_unique_and_namespaced(self):
        seen = set()
        for name, spec in SPECS.items():
            for t in spec.transitions:
                assert t.tid.startswith(name + "."), t.tid
                assert t.tid not in seen, f"duplicate tid {t.tid}"
                seen.add(t.tid)
