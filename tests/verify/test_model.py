"""Exhaustive model checker: clean sweeps, reachability, seeded violations."""

import time

import pytest

from repro.verify.model import (
    LLC,
    MEM,
    StuckState,
    _d2m_check,
    _d2m_successors,
    _explore,
    _mesi_check,
    check_all,
    check_d2m,
    check_mesi,
)
from repro.verify.spec import D2M_SPEC, MESI_SPEC


class TestAcceptanceSweep:
    def test_both_specs_clean_and_fast(self):
        start = time.monotonic()
        results = check_all()
        elapsed = time.monotonic() - start
        assert elapsed < 60.0, f"model check took {elapsed:.1f}s"
        for result in results:
            assert result.ok, result.violations
            assert result.states > 1
            assert result.steps > result.states

    def test_every_modeled_transition_reachable(self):
        fired = {}
        for result in check_all():
            fired.setdefault(result.protocol, set()).update(result.fired)
        for spec in (MESI_SPEC, D2M_SPEC):
            modeled = {t.tid for t in spec.transitions if t.model}
            missing = modeled - fired[spec.name]
            assert not missing, f"{spec.name}: never fired {sorted(missing)}"

    def test_three_cores_still_clean(self):
        assert check_mesi(3, 1).ok
        assert check_d2m(3, 1).ok

    def test_unreachable_helper_lists_unfired(self):
        result = check_mesi(2, 1)
        result.fired.discard("mesi.recall")
        assert "mesi.recall" in result.unreachable(MESI_SPEC)


class TestSeededMesiViolations:
    """Hand-corrupted states must trip the matching invariant."""

    def test_two_owners_is_swmr(self):
        state = ((("M", "M"), True, frozenset({0})),)
        kind, detail = _mesi_check(state)
        assert kind == "swmr"
        assert "owner" in detail

    def test_owner_with_sharer_is_swmr(self):
        state = ((("M", "S"), True, frozenset({0})),)
        assert _mesi_check(state)[0] == "swmr"

    def test_node_copy_without_llc_is_inclusion(self):
        state = ((("S", "I"), False, frozenset({0})),)
        assert _mesi_check(state)[0] == "inclusion"

    def test_lost_newest_data_is_data_value(self):
        state = ((("I", "I"), False, frozenset()),)
        assert _mesi_check(state)[0] == "data-value"

    def test_fresh_set_outside_holders_is_data_value(self):
        state = ((("I", "I"), False, frozenset({1})),)
        assert _mesi_check(state)[0] == "data-value"

    def test_clean_initial_state_passes(self):
        state = ((("I", "I"), False, frozenset({MEM})),)
        assert _mesi_check(state) is None


class TestSeededD2mViolations:
    @staticmethod
    def _state(region, line):
        return (region, (line,))

    def test_private_region_with_two_pb_bits(self):
        bad = self._state((True, frozenset({0, 1}), True),
                          (None, frozenset(), frozenset({MEM})))
        kind, detail = _d2m_check(bad)
        assert kind == "md-tracking"
        assert "private" in detail

    def test_pb_without_md3_entry(self):
        bad = self._state((False, frozenset({0}), False),
                          (None, frozenset(), frozenset({MEM})))
        assert _d2m_check(bad)[0] == "md-tracking"

    def test_cached_line_without_tracking(self):
        bad = self._state((False, frozenset(), False),
                          (LLC, frozenset(), frozenset({LLC})))
        assert _d2m_check(bad)[0] == "md-tracking"

    def test_copies_outside_pb(self):
        bad = self._state((True, frozenset({0}), True),
                          (0, frozenset({0, 1}), frozenset({0, 1})))
        assert _d2m_check(bad)[0] == "md-tracking"

    def test_master_without_copy_is_swmr(self):
        bad = self._state((True, frozenset({0}), True),
                          (0, frozenset(), frozenset({MEM})))
        assert _d2m_check(bad)[0] == "swmr"

    def test_lost_newest_data(self):
        bad = self._state((True, frozenset({0}), True),
                          (0, frozenset({0}), frozenset()))
        assert _d2m_check(bad)[0] == "data-value"

    def test_clean_initial_state_passes(self):
        good = self._state((False, frozenset(), False),
                           (None, frozenset(), frozenset({MEM})))
        assert _d2m_check(good) is None


class TestStuckDetection:
    def test_stale_local_copy_reported_as_stuck(self):
        # A node holds a copy it cannot legally serve (not in the
        # freshness set): the load hit rule raises, and the explorer
        # reports it as a stuck state instead of crashing.
        region = (True, frozenset({0}), True)
        line = (0, frozenset({0}), frozenset({MEM}))
        initial = (region, (line,))
        result = _explore("d2m", 2, 1, initial,
                          _d2m_successors(2, 1), lambda _s: None)
        assert any(v.invariant == "stuck" for v in result.violations)

    def test_stuckstate_message_propagates(self):
        def successors(_state):
            raise StuckState("no handler for (X, store)")
            yield  # pragma: no cover

        result = _explore("mesi", 2, 1, ("init",), successors,
                          lambda _s: None)
        assert result.violations[0].invariant == "stuck"
        assert "no handler" in result.violations[0].detail

    def test_violation_path_reconstructed(self):
        # Corrupt the checker instead of the model: flag any state where
        # node 0 went Modified, and require the event trail to show how
        # BFS got there.
        def check(state):
            if state[0][0][0] == "M":
                return ("swmr", "seeded: node 0 reached M")
            return None

        from repro.verify.model import _mesi_successors

        line = (("I", "I"), False, frozenset({MEM}))
        result = _explore("mesi", 2, 1, (line,),
                          _mesi_successors(2, 1), check)
        assert result.violations, "seeded check never fired"
        bad = result.violations[0]
        assert bad.invariant == "swmr"
        assert bad.path, "violation must carry its event path"
        assert any("store(n0)" in step or "load(n0)" in step
                   for step in bad.path)

    def test_state_explosion_guard(self):
        result = _explore("mesi", 2, 1,
                          (("I", "I"), False, frozenset({MEM})),
                          lambda s: iter([((s, object()), (), "spin")]),
                          lambda _s: None, max_states=10)
        assert any(v.invariant == "explosion" for v in result.violations)
