"""`repro verify` wiring: report assembly, rendering, CLI exit codes."""

import json

from repro.cli import main
from repro.verify.coverage import CoverageReport, TransitionCoverage
from repro.verify.extract import Finding
from repro.verify.model import ModelResult, Violation
from repro.verify.report import (
    VerificationReport,
    run_verification,
    write_json,
)


def _report(**kw):
    defaults = dict(spec_findings=[], fact_count=10, transition_count=5,
                    model_results=[], model_checked=False, coverage=None)
    defaults.update(kw)
    return VerificationReport(**defaults)


class TestReportVerdict:
    def test_spec_findings_fail(self):
        finding = Finding(kind="undeclared", module="m", qualname="f",
                          fact="stat:x", detail="x")
        assert not _report(spec_findings=[finding]).ok

    def test_model_violation_fails_only_when_checked(self):
        bad = ModelResult(protocol="mesi", cores=2, lines=1, states=3,
                          steps=9, violations=[
                              Violation(invariant="swmr", detail="d",
                                        path=("load(n0)",))],
                          fired=set())
        assert not _report(model_results=[bad], model_checked=True).ok

    def test_unfired_modeled_transition_fails(self):
        # A clean result that never fired anything: every modeled mesi
        # transition shows up as drift.
        empty = ModelResult(protocol="mesi", cores=2, lines=1, states=3,
                            steps=9, violations=[], fired=set())
        report = _report(model_results=[empty], model_checked=True)
        assert report.unfired["mesi"]
        assert not report.ok

    def test_coverage_finding_fails(self):
        cov = CoverageReport(runs=["r"], transitions=[
            TransitionCoverage(tid="d2m.x", protocol="d2m",
                               exercised=False, via="", cold=None)])
        assert not _report(coverage=cov).ok

    def test_clean_report_ok_and_renders(self):
        report = _report()
        assert report.ok
        text = report.render()
        assert "spec reconcile" in text
        assert "10 facts" in text


class TestRunVerification:
    def test_static_only_pass(self):
        report = run_verification()
        assert report.ok
        assert not report.model_checked
        assert report.coverage is None
        assert report.fact_count > 100
        assert report.transition_count > 30

    def test_model_check_pass(self):
        report = run_verification(model_check=True)
        assert report.ok
        assert report.model_checked
        assert report.model_violations == 0
        assert report.unfired == {}
        assert "model check [d2m]" in report.render()

    def test_json_round_trip(self, tmp_path):
        report = run_verification(model_check=True)
        out = tmp_path / "verify.json"
        write_json(report, str(out))
        doc = json.loads(out.read_text())
        assert doc["ok"] is True
        assert doc["spec"]["findings"] == []
        assert {c["protocol"] for c in doc["model"]["configs"]} == {
            "mesi", "d2m"}


class TestCli:
    def test_verify_exits_zero(self, capsys):
        assert main(["verify"]) == 0
        assert "spec reconcile" in capsys.readouterr().out

    def test_verify_model_check_writes_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["verify", "--model-check",
                     "--json-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["ok"] is True
        assert "model" in doc

    def test_verify_exits_one_on_findings(self, monkeypatch, capsys):
        from repro.verify import report as report_mod

        def broken(model_check=False, coverage=False):
            finding = Finding(kind="undeclared", module="m",
                              qualname="f", fact="stat:x", detail="boom")
            return _report(spec_findings=[finding])

        monkeypatch.setattr(report_mod, "run_verification", broken)
        assert main(["verify"]) == 1
        assert "boom" in capsys.readouterr().out
