"""Unit tests for the workload framework."""

import itertools

from repro.common.types import AccessKind
from repro.mem.address import AddressMap
from repro.workloads.base import CodeModel, DataMix, SyntheticWorkload
from repro.workloads.registry import get_spec, make_workload


class TestCodeModel:
    def test_hot_fraction_controls_locality(self):
        import random
        hot = CodeModel(footprint=1 << 20, hot_fraction=1.0,
                        hot_functions=4).build(0, random.Random(0))
        rng = random.Random(1)
        pcs = [hot.next_pc(rng) for _ in range(3000)]
        # nearly everything stays within the hot set plus fallthrough
        near = sum(1 for pc in pcs if pc - hot.base < 16 * 1024)
        assert near > 0.95 * len(pcs)

    def test_private_code_images_disjoint(self):
        import random
        model = CodeModel(shared=False)
        a = model.build(0, random.Random(0))
        b = model.build(1, random.Random(0))
        assert a.base != b.base

    def test_warm_tier_used(self):
        import random
        model = CodeModel(footprint=1 << 20, hot_fraction=0.0,
                          warm_fraction=1.0, hot_functions=4,
                          warm_functions=8, avg_block=1)
        stream = model.build(0, random.Random(0))
        rng = random.Random(2)
        pcs = [stream.next_pc(rng) for _ in range(500)]
        slots = {(pc - stream.base) // 256 for pc in pcs}
        assert slots <= set(range(0, 12))  # hot(4) + warm(8) only


class TestSyntheticWorkload:
    def test_deterministic_generation(self):
        amap = AddressMap()
        a = make_workload("water", 4, amap, seed=9)
        b = make_workload("water", 4, amap, seed=9)
        ta = list(itertools.islice(a.generate(500, seed=9), 600))
        tb = list(itertools.islice(b.generate(500, seed=9), 600))
        assert ta == tb

    def test_instruction_count_exact(self):
        workload = make_workload("water", 4, AddressMap(), seed=9)
        instr = sum(1 for acc in workload.generate(777, seed=9)
                    if acc.is_instruction)
        assert instr == 777

    def test_cores_interleaved(self):
        workload = make_workload("water", 8, AddressMap(), seed=9)
        cores = {acc.core for acc in workload.generate(400, seed=9)}
        assert cores == set(range(8))

    def test_mem_ratio_respected(self):
        spec = get_spec("water")
        workload = make_workload("water", 4, AddressMap(), seed=9)
        accesses = list(workload.generate(4000, seed=9))
        data = sum(1 for a in accesses if not a.is_instruction)
        instr = sum(1 for a in accesses if a.is_instruction)
        assert abs(data / instr - spec.mem_ratio) < 0.05

    def test_shared_space_translation(self):
        workload = make_workload("water", 2, AddressMap(), seed=9)
        assert workload.translate(0, 0x5000) == workload.translate(1, 0x5000)

    def test_separate_spaces_for_server(self):
        workload = make_workload("mix1", 2, AddressMap(), seed=9)
        assert workload.translate(0, 0x5000) != workload.translate(1, 0x5000)


class TestGenerateFast:
    """The allocation-free generator must replay ``generate`` exactly."""

    @staticmethod
    def _tuples(stream):
        # materialize values, not Access objects: generate_fast mutates
        # and reuses its yielded shells
        return [(a.core, a.kind, a.vaddr) for a in stream]

    def test_matches_reference_stream(self):
        for name in ("water", "tpcc", "mix1"):
            amap = AddressMap()
            ref = self._tuples(
                make_workload(name, 4, amap, seed=9).generate(1500, seed=9))
            fast = self._tuples(
                make_workload(name, 4, amap, seed=9).generate_fast(
                    1500, seed=9))
            assert fast == ref, name

    def test_matches_with_default_seed(self):
        amap = AddressMap()
        ref = self._tuples(make_workload("water", 2, amap,
                                         seed=5).generate(800))
        fast = self._tuples(make_workload("water", 2, amap,
                                          seed=5).generate_fast(800))
        assert fast == ref

    def test_shells_are_reused(self):
        workload = make_workload("water", 2, AddressMap(), seed=9)
        ids = {(a.core, a.kind, id(a))
               for a in workload.generate_fast(400, seed=9)}
        # one object per (core, kind), not one per yielded access
        assert len(ids) <= 2 * len(AccessKind)
