"""Tests for the named workload suites and registry."""

import pytest

from repro.workloads.registry import (
    CATEGORIES,
    get_spec,
    make_workload,
    workload_names,
    workloads_by_category,
)


class TestRegistry:
    def test_five_categories(self):
        groups = workloads_by_category()
        assert list(groups) == list(CATEGORIES)
        for category, names in groups.items():
            assert names, category

    def test_paper_workloads_present(self):
        names = set(workload_names())
        for required in ("canneal", "streamcluster", "lu", "fft", "tpcc",
                         "mix1", "mix4", "cnn", "wikipedia", "barnes"):
            assert required in names

    def test_roughly_paper_sized_sweep(self):
        assert len(workload_names()) >= 25

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_spec("doom")

    def test_category_filter(self):
        assert all(get_spec(n).category == "Mobile"
                   for n in workload_names("Mobile"))


class TestSpecShapes:
    def test_server_mixes_are_multiprogrammed(self):
        for name in workload_names("Server"):
            assert not get_spec(name).shared_space

    def test_parallel_suites_share_memory(self):
        for name in workload_names("Parallel"):
            assert get_spec(name).shared_space

    def test_database_has_biggest_code(self):
        tpcc = get_spec("tpcc").code.footprint
        assert tpcc >= max(get_spec(n).code.footprint
                           for n in workload_names("Parallel"))

    def test_every_workload_generates(self):
        from repro.mem.address import AddressMap
        for name in workload_names():
            workload = make_workload(name, 2, AddressMap(), seed=1)
            accesses = list(workload.generate(50, seed=1))
            assert len(accesses) >= 50, name
            for acc in accesses:
                workload.translate(acc.core, acc.vaddr)
