"""Unit + property tests for the data-stream primitives."""

import random

from hypothesis import given, settings, strategies as st

from repro.workloads.synthetic import (
    HotLineStream,
    PointerChaseStream,
    ProducerConsumerStream,
    RandomStream,
    SequentialStream,
    StencilStream,
    StridedStream,
    ZipfStream,
)


def drain(stream, n=500, seed=1):
    rng = random.Random(seed)
    return [stream.next_op(rng) for _ in range(n)]


class TestSequential:
    def test_stays_in_bounds(self):
        ops = drain(SequentialStream(0x1000, 256, stride=16))
        assert all(0x1000 <= a < 0x1100 for a, _w in ops)

    def test_wraps_around(self):
        ops = drain(SequentialStream(0, 64, stride=16), n=8)
        assert ops[4][0] == ops[0][0]

    def test_write_fraction_zero(self):
        assert not any(w for _a, w in drain(
            SequentialStream(0, 1024, write_frac=0.0)))


class TestStrided:
    def test_power_of_two_stride(self):
        ops = drain(StridedStream(0, 1 << 20, stride=1 << 16), n=16)
        deltas = {(b - a) % (1 << 20)
                  for (a, _), (b, _) in zip(ops, ops[1:])}
        assert (1 << 16) in deltas

    def test_offset_shifts_between_sweeps(self):
        stream = StridedStream(0, 1 << 12, stride=1 << 10)
        first_sweep = drain(stream, n=4)
        second_sweep = drain(stream, n=4)
        assert first_sweep[0][0] != second_sweep[0][0]


class TestRandom:
    def test_run_fields_are_adjacent(self):
        ops = drain(RandomStream(0, 1 << 20, run_ops=3, run_step=16), n=9)
        # within each run of 3 the addresses step by 16
        for i in range(0, 9, 3):
            assert ops[i + 1][0] == ops[i][0] + 16
            assert ops[i + 2][0] == ops[i][0] + 32


class TestZipf:
    def test_skew(self):
        stream = ZipfStream(0, 1 << 16, granule=256, alpha=1.0, run_ops=1)
        counts = {}
        for addr, _w in drain(stream, n=4000):
            counts[addr] = counts.get(addr, 0) + 1
        top = max(counts.values())
        assert top > 4000 / len(counts) * 3  # clearly non-uniform

    def test_runs_walk_the_object(self):
        stream = ZipfStream(0, 1 << 16, run_ops=4, run_step=24)
        ops = drain(stream, n=4)
        assert ops[1][0] == ops[0][0] + 24

    def test_popularity_clusters_spatially(self):
        # hot items sit at low addresses (allocation-order locality)
        stream = ZipfStream(0, 1 << 20, granule=256, alpha=1.2, run_ops=1)
        addrs = [a for a, _ in drain(stream, n=2000)]
        low = sum(1 for a in addrs if a < (1 << 20) // 4)
        assert low > len(addrs) // 2


class TestPointerChase:
    def test_deterministic_cycle(self):
        a = [a for a, _ in drain(PointerChaseStream(0, 4096, seed=3))]
        b = [a for a, _ in drain(PointerChaseStream(0, 4096, seed=3))]
        assert a == b

    def test_field_reads_stay_in_node(self):
        stream = PointerChaseStream(0, 4096, node_size=64)
        ops = drain(stream, n=9)
        for i in range(0, 9, 3):
            node = ops[i][0] & ~63
            assert all(node <= ops[i + j][0] < node + 64 for j in range(3))


class TestStencil:
    def test_mostly_own_rows(self):
        stream = StencilStream(0, rows=64, row_bytes=1024, core=2, cores=4)
        own = 0
        ops = drain(stream, n=1000)
        for addr, _w in ops:
            row = addr // 1024
            if 32 <= row < 48:
                own += 1
        assert own > 800


class TestProducerConsumer:
    def test_reads_predecessor_writes_self(self):
        stream = ProducerConsumerStream(0, chunk=4096, core=2, cores=4)
        for addr, is_write in drain(stream, n=400):
            chunk = addr // 4096
            if is_write:
                assert chunk == 2
            else:
                assert chunk == 1


class TestHotLines:
    def test_bounded_to_line_pool(self):
        ops = drain(HotLineStream(0x7000, lines=4))
        assert {a for a, _w in ops} <= {0x7000 + i * 64 for i in range(4)}


@settings(max_examples=20)
@given(st.integers(0, 2**20), st.sampled_from([256, 1024, 65536]),
       st.floats(0.3, 1.3))
def test_zipf_always_in_bounds(base, size, alpha):
    stream = ZipfStream(base, size, alpha=alpha)
    rng = random.Random(0)
    for _ in range(100):
        addr, _w = stream.next_op(rng)
        assert base <= addr < base + size + stream.run_ops * stream.run_step
