"""Tests for trace-file recording and replay."""

import pytest

from repro.common.errors import TraceError
from repro.common.params import base_2l, d2m_fs
from repro.common.types import AccessKind
from repro.core.hierarchy import build_hierarchy
from repro.mem.address import AddressMap
from repro.sim.simulator import Simulator
from repro.workloads.registry import make_workload
from repro.workloads.tracefile import (
    TraceFileWorkload,
    load_trace,
    parse_trace_line,
    record_trace,
)


class TestParsing:
    def test_basic_line(self):
        acc = parse_trace_line("2 L 0x1000")
        assert acc.core == 2
        assert acc.kind is AccessKind.LOAD
        assert acc.vaddr == 0x1000

    def test_decimal_and_case(self):
        assert parse_trace_line("0 s 4096").kind is AccessKind.STORE
        assert parse_trace_line("0 i 4096").kind is AccessKind.IFETCH

    def test_garbage_rejected(self):
        for bad in ("1 L", "x L 0", "0 Q 0", "0 L zz"):
            with pytest.raises(TraceError):
                parse_trace_line(bad)


class TestRecordReplay:
    def test_roundtrip_identical_stream(self, tmp_path):
        amap = AddressMap()
        source = make_workload("water", 2, amap, seed=3)
        path = tmp_path / "water.trace"
        written = record_trace(source, 300, path, seed=3)
        assert written > 300  # instructions + data ops

        replay = TraceFileWorkload(path, nodes=2, amap=amap)
        fresh = make_workload("water", 2, amap, seed=3)
        assert (list(replay.generate(300))
                == list(fresh.generate(300, seed=3)))

    @pytest.mark.parametrize("wl_name", ["water", "mix1"])
    def test_roundtrip_simulation_bit_identical(self, tmp_path, wl_name):
        # record_trace -> TraceFileWorkload must reproduce the
        # originating synthetic run bit-for-bit: stats tree, buckets,
        # per-core totals, cycles, and telemetry histogram digests.
        # 'water' uses a shared address space (threads of one process),
        # 'mix1' per-process spaces — both conventions must survive the
        # round trip.
        from repro.obs.telemetry import Telemetry
        from repro.sim.bench import result_snapshot
        from repro.sim.perf import PerfModel

        def simulate(workload, config):
            hierarchy = build_hierarchy(config)
            tele = Telemetry(sample_every=32).attach(hierarchy)
            simulator = Simulator(hierarchy, telemetry=tele)
            result = simulator.run(workload, 400, seed=3, warmup=120)
            perf = PerfModel(config.ooo).summarize(result)
            snap = result_snapshot(result, perf.cycles)
            snap["hists"] = tele.hists.summaries()
            return snap

        amap = AddressMap()
        source = make_workload(wl_name, 2, amap, seed=3)
        shared = source.spec.shared_space
        path = tmp_path / f"{wl_name}.trace"
        # the run consumes warmup + instructions = 520 windows
        record_trace(source, 520, path, seed=3)
        for factory in (base_2l, d2m_fs):
            original = simulate(make_workload(wl_name, 2, amap, seed=3),
                                factory(2))
            replayed = simulate(
                TraceFileWorkload(path, nodes=2, amap=amap,
                                  shared_space=shared),
                factory(2))
            assert original == replayed, (wl_name, factory.__name__)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# header\n\n0 I 0x10  # inline\n0 L 0x20\n")
        assert len(load_trace(path)) == 2

    def test_core_bound_checked(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("5 L 0x10\n")
        workload = TraceFileWorkload(path, nodes=2)
        with pytest.raises(TraceError):
            list(workload.generate(10))

    def test_instruction_budget_respected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("0 I 0x10\n0 L 0x20\n0 I 0x30\n0 I 0x40\n")
        workload = TraceFileWorkload(path, nodes=1)
        accesses = list(workload.generate(2))
        assert sum(1 for a in accesses if a.is_instruction) == 2


class TestSimulationOnTraces:
    @pytest.mark.parametrize("factory", [base_2l, d2m_fs])
    def test_trace_drives_any_hierarchy(self, tmp_path, factory):
        amap = AddressMap()
        source = make_workload("water", 2, amap, seed=4)
        path = tmp_path / "water.trace"
        record_trace(source, 1_000, path, seed=4)

        hierarchy = build_hierarchy(factory(2))
        replay = TraceFileWorkload(path, nodes=2, amap=hierarchy.amap)
        result = Simulator(hierarchy, check_values=True).run(replay, 1_000)
        assert result.instructions == 1_000

    def test_replay_matches_synthetic_results(self, tmp_path):
        amap = AddressMap()
        source = make_workload("water", 2, amap, seed=4)
        path = tmp_path / "water.trace"
        record_trace(source, 800, path, seed=4)

        h1 = build_hierarchy(base_2l(2))
        r1 = Simulator(h1).run(make_workload("water", 2, h1.amap, seed=4),
                               800, seed=4)
        h2 = build_hierarchy(base_2l(2))
        r2 = Simulator(h2).run(TraceFileWorkload(path, 2, amap=h2.amap), 800)
        assert r1.miss_ratio(False) == r2.miss_ratio(False)
        assert h1.network.total_messages == h2.network.total_messages
