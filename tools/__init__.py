"""Repository maintenance tools (lint gate, etc.)."""
