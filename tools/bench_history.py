"""Longitudinal bench trends: ``BENCH_*.json`` reports as one table.

``repro bench`` emits one dated perf report per run and ``repro
compare`` diffs exactly two of them; this tool reads *every* report in
a directory (dated names sort chronologically) and prints the trend —
geomean instructions/second per report plus the delta against the
previous report of the same kind.  Deltas are only computed between
reports with the same mode and pinned matrix (a ``--quick`` report
against a full one would just measure the budget difference, the same
rule ``compare_bench`` applies).

Stdlib only, so it runs anywhere the repo is checked out::

    python -m tools.bench_history [--root DIR] [--json]

``repro bench --history`` is the CLI front door.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence


def history_rows(paths: Sequence[Path]) -> List[Dict[str, object]]:
    """One row per readable bench report, in the order given.

    ``delta`` is the relative geomean-ips change against the previous
    comparable report (same mode + pinned matrix), None for the first
    of its kind.  ``equivalence`` is True/False when the report ran its
    equivalence gate, None when it skipped it.  Unreadable or foreign
    JSON files are skipped silently (same contract as the run cache).
    """
    rows: List[Dict[str, object]] = []
    previous: Dict[str, float] = {}
    for path in paths:
        try:
            report = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if not isinstance(report, dict) or "geomean_ips" not in report \
                or "cells" not in report:
            continue
        mode = str(report.get("mode", "?"))
        kind = mode + "|" + json.dumps(report.get("matrix", {}),
                                       sort_keys=True)
        geomean = float(report.get("geomean_ips", 0.0) or 0.0)
        prev = previous.get(kind, 0.0)
        delta: Optional[float] = (geomean / prev - 1.0) if prev > 0 else None
        cells = report.get("cells")
        equivalence: Optional[bool] = None
        if report.get("equivalence_checked"):
            equivalence = bool(report.get("equivalence_ok", True))
        rows.append({
            "name": Path(path).name,
            "date": str(report.get("date", "")),
            "mode": mode,
            "cells": len(cells) if isinstance(cells, list) else 0,
            "geomean_ips": geomean,
            "delta": delta,
            "equivalence": equivalence,
        })
        if geomean > 0:
            previous[kind] = geomean
    return rows


def history_table(rows: Sequence[Dict[str, object]]) -> str:
    """The trend table as plain text (one line per report)."""
    if not rows:
        return "bench history: no BENCH_*.json reports found"
    name_width = max(max(len(str(row["name"])) for row in rows), 6)
    header = (f"{'report':<{name_width}}  {'mode':5}  {'cells':>5}  "
              f"{'geomean ips':>12}  {'vs prev':>8}  equiv")
    lines = [header, "-" * len(header)]
    for row in rows:
        delta = row["delta"]
        delta_text = "-" if delta is None else f"{delta:+.1%}"  # type: ignore[str-format]
        equivalence = row["equivalence"]
        equiv_text = ("-" if equivalence is None
                      else "ok" if equivalence else "FAIL")
        lines.append(f"{str(row['name']):<{name_width}}  "
                     f"{str(row['mode']):5}  {row['cells']:>5}  "
                     f"{float(row['geomean_ips']):>12,.1f}  "  # type: ignore[arg-type]
                     f"{delta_text:>8}  {equiv_text}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_history",
        description="trend table over every BENCH_*.json in a directory")
    parser.add_argument("--root", default=".",
                        help="directory holding BENCH_*.json (default .)")
    parser.add_argument("--json", action="store_true",
                        help="emit the rows as JSON instead of a table")
    args = parser.parse_args(argv)
    rows = history_rows(sorted(Path(args.root).glob("BENCH_*.json")))
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(history_table(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
