"""Standalone launcher for the simulator performance benchmark.

Equivalent to ``repro bench``; exists so the benchmark can be run from a
checkout without installing the package::

    PYTHONPATH=src python tools/bench_repro.py [--quick] [--out PATH]
    PYTHONPATH=src python tools/bench_repro.py --quick --baseline auto

Exits nonzero when the optimized driver's statistics diverge from the
reference generator's — the bit-identity gate CI's bench-smoke job
enforces.  With ``--baseline <file|auto>`` the fresh report is also
diffed against that baseline bench report (auto = newest committed
``BENCH_*.json``) and a regression beyond threshold exits 3 — the
sentinel CI's bench-compare job keys on.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the simulator over the pinned matrix")
    parser.add_argument("--quick", action="store_true",
                        help="smaller budget, single repetition")
    parser.add_argument("--out", default="",
                        help="output JSON path (default BENCH_<date>.json)")
    parser.add_argument("--no-equivalence", action="store_true",
                        help="skip the stats equivalence gate")
    parser.add_argument("--baseline", default="", metavar="FILE|auto",
                        help="diff the fresh report against this baseline "
                             "bench report (auto = newest committed "
                             "BENCH_*.json); exit 3 on regression")
    args = parser.parse_args(argv)

    from repro.sim.bench import main as bench_main

    return bench_main(quick=args.quick, out=args.out,
                      check_equivalence=not args.no_equivalence,
                      baseline=args.baseline)


if __name__ == "__main__":
    sys.exit(main())
