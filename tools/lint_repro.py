"""Repo-specific AST lint: enforce the central stats-key registry.

Every counter name passed as a string literal to a ``StatGroup`` method
(``add``/``set``/``get``/``total``/``ratio`` on a receiver named
``stats``, ``events``, or ``_stats``) must appear in
``repro.common.stats.STAT_KEYS``.  A typo'd key would otherwise create a
dead counter silently — reads return 0.0 and writes land in a counter
nobody reports.  Bound-method aliases are tracked too: after
``stats_add = stats.add`` (the batched fast path hoists the lookup out
of its hot loop), calls through the alias are linted like the method
itself.

Accepted key expressions:

* a string literal present in the registry;
* a conditional expression whose both arms are registered literals
  (``"l2.i.hits" if instr else "l2.d.hits"``);
* a subscript of a module-level ``_KEY_*`` dict table whose **values**
  are validated against the registry at the table's definition;
* any other dynamic expression (a variable, an attribute) — assumed to
  be derived from registered keys upstream;
* an f-string **only** when the line carries the waiver comment
  ``# lint: allow-dynamic-stat-key``.

Usage::

    python -m tools.lint_repro [paths...]   # default: src/repro
    python -m tools.lint_repro --trace-schema trace.jsonl [...]
    python -m tools.lint_repro --digest-schema .repro_cache/runs [...]
    python -m tools.lint_repro --timeline-schema .repro_cache/runs [...]
    python -m tools.lint_repro --serve-schema payloads/ [...]
    python -m tools.lint_repro --metrics-schema [metrics.txt ...]
    python -m tools.lint_repro --protocol

The default (path-lint) mode additionally fails when git tracks
compiled-bytecode noise (``*.pyc`` / ``__pycache__``) — ``.gitignore``
keeps new litter out, this catches litter that was force-added.

``--trace-schema`` switches to validating JSONL trace exports (from
``repro trace --format jsonl``) against the schema in
:data:`repro.obs.trace.TRACE_FIELDS` — CI runs it on the smoke trace.

``--digest-schema`` validates the histogram-digest payloads (``hists``)
of cached run records — files or directories of ``*.json`` — against
:func:`repro.obs.histogram.validate_digest`: an empty digest is exactly
``{"count": 0.0}``; a non-empty one carries count/mean/max/p50/p90/p99
with monotonic percentiles and nothing else.  The records' ``profile``
and ``timeline`` payloads are validated alongside.

``--timeline-schema`` validates epoch time-series documents — cached
run records (their ``timeline`` field) or bare timeline JSON files —
against :func:`repro.obs.timeline.validate_timeline`: absent/empty
means sampling was off, ``{"epochs": 0}`` is the sampled-but-empty
contract, anything else must carry aligned integer series columns under
known names.

``--serve-schema`` validates captured ``repro serve`` response payloads
(health / job / record / error, sniffed by shape) against
:mod:`repro.serve.schema` — the machine-checkable half of
``docs/SERVING.md``; CI's serve-smoke job runs it on live responses.

``--metrics-schema`` first self-checks the declared metric registry
(:data:`repro.obs.metrics.METRIC_SCHEMA`), then validates any given
``/metrics`` scrapes (Prometheus text exposition 0.0.4 files) against
it via :func:`repro.obs.metrics.validate_exposition` — every sample
must belong to a declared metric with declared labels, counters must
end in ``_total``, histograms must carry monotonic cumulative buckets.
CI's serve-smoke job runs it on a live scrape.

``--protocol`` reconciles the coherence-protocol implementations against
the declarative transition tables in :mod:`repro.verify.spec` (see
``docs/VERIFICATION.md``): every protocol-visible effect the AST
extractor recovers must be claimed by a spec transition or waived, and
every spec claim must match real code.

Exit status 1 when any violation is found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = [REPO_ROOT / "src" / "repro"]

#: StatGroup methods whose string arguments are counter keys.
KEY_METHODS = {"add": 1, "set": 1, "get": 1, "total": 1, "ratio": 2}
#: Receiver names treated as StatGroup instances.
STAT_RECEIVERS = {"stats", "events", "_stats"}
WAIVER = "lint: allow-dynamic-stat-key"


def _load_registry() -> frozenset:
    """Import STAT_KEYS without requiring the package to be installed."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.common.stats import STAT_KEYS
    return STAT_KEYS


def _receiver_name(node: ast.expr) -> str:
    """Terminal name of a call receiver (``self.stats`` -> ``stats``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_key_table_subscript(node: ast.expr) -> bool:
    """Whether ``node`` is ``_KEY_FOO[...]`` (a validated key table)."""
    return (isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id.startswith("_KEY_"))


class StatKeyLinter(ast.NodeVisitor):
    """Collects registry violations for one module."""

    def __init__(self, path: Path, source: str, registry: frozenset) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.registry = registry
        self.errors: List[Tuple[int, str]] = []
        #: bare name -> aliased StatGroup method (``stats_add`` -> ``add``)
        self.aliases: dict = {}

    # -- helpers -----------------------------------------------------------

    def _waived(self, lineno: int) -> bool:
        line = self.lines[lineno - 1] if lineno <= len(self.lines) else ""
        return WAIVER in line

    def _error(self, lineno: int, message: str) -> None:
        self.errors.append((lineno, message))

    def _check_key(self, arg: ast.expr) -> None:
        if isinstance(arg, ast.Constant):
            if not isinstance(arg.value, str):
                self._error(arg.lineno,
                            f"stat key must be a string, got {arg.value!r}")
            elif arg.value not in self.registry:
                self._error(arg.lineno,
                            f'unregistered stat key "{arg.value}" '
                            f"(add it to repro.common.stats.STAT_KEYS)")
        elif isinstance(arg, ast.IfExp):
            self._check_key(arg.body)
            self._check_key(arg.orelse)
        elif isinstance(arg, ast.JoinedStr):
            if not self._waived(arg.lineno):
                self._error(arg.lineno,
                            "dynamic (f-string) stat key; derive it from "
                            "registered keys or add the waiver comment "
                            f"'# {WAIVER}'")
        # Other expressions (names, attributes, _KEY_* subscripts) pass.

    # -- visitors ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        method = ""
        if (isinstance(func, ast.Attribute)
                and func.attr in KEY_METHODS
                and _receiver_name(func.value) in STAT_RECEIVERS):
            method = func.attr
        elif isinstance(func, ast.Name) and func.id in self.aliases:
            method = self.aliases[func.id]
        if method:
            for arg in node.args[:KEY_METHODS[method]]:
                self._check_key(arg)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Module-level `_KEY_FOO = {...: "literal"}` tables: validate the
        # values once here so subscripts of the table are trusted later.
        if (len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id.startswith("_KEY_")
                and isinstance(node.value, ast.Dict)):
            for value in node.value.values:
                self._check_key(value)
        # Bound-method aliases (`stats_add = stats.add`): calls through
        # the bare name are linted like the method itself.  A later
        # rebind to anything else clears the alias.
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            target = node.targets[0].id
            value = node.value
            if (isinstance(value, ast.Attribute)
                    and value.attr in KEY_METHODS
                    and _receiver_name(value.value) in STAT_RECEIVERS):
                self.aliases[target] = value.attr
            else:
                self.aliases.pop(target, None)
        self.generic_visit(node)


def iter_python_files(paths: List[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: List[Path]) -> List[str]:
    """Lint the given files/directories; returns formatted violations."""
    registry = _load_registry()
    problems: List[str] = []
    for path in iter_python_files(paths):
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            problems.append(f"{path}:{exc.lineno}: syntax error: {exc.msg}")
            continue
        linter = StatKeyLinter(path, source, registry)
        linter.visit(tree)
        try:
            shown = path.relative_to(REPO_ROOT)
        except ValueError:
            shown = path
        problems.extend(f"{shown}:{lineno}: {message}"
                        for lineno, message in sorted(linter.errors))
    return problems


def check_trace_schema(paths: List[Path]) -> List[str]:
    """Validate JSONL trace files; returns formatted violations."""
    import json

    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.obs.trace import validate_trace_record

    problems: List[str] = []
    for path in paths:
        count = 0
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            problems.append(f"{path}: unreadable: {exc}")
            continue
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            count += 1
            try:
                record = json.loads(line)
            except ValueError as exc:
                problems.append(f"{path}:{lineno}: not JSON: {exc}")
                continue
            error = validate_trace_record(record)
            if error:
                problems.append(f"{path}:{lineno}: {error}")
        if count == 0:
            problems.append(f"{path}: empty trace (no records)")
    return problems


def check_digest_schema(paths: List[Path]) -> List[str]:
    """Validate run-record histogram + profile digests; returns
    violations."""
    import json

    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.obs.histogram import validate_digest
    from repro.obs.profile import validate_profile
    from repro.obs.timeline import validate_timeline

    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        else:
            files.append(path)
    problems: List[str] = []
    checked = 0
    for path in files:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            problems.append(f"{path}: unreadable: {exc}")
            continue
        except ValueError as exc:
            problems.append(f"{path}: not JSON: {exc}")
            continue
        if not isinstance(payload, dict):
            problems.append(f"{path}: record is not a JSON object")
            continue
        hists = payload.get("hists", {})
        if not isinstance(hists, dict):
            problems.append(f"{path}: 'hists' is "
                            f"{type(hists).__name__}, not an object")
            continue
        for name, digest in sorted(hists.items()):
            checked += 1
            for issue in validate_digest(digest):
                problems.append(f"{path}: hists[{name!r}]: {issue}")
        # records persisted before RUN_FORMAT 8 carry no 'profile' key;
        # an absent key is as valid as the empty (unprofiled) digest
        for issue in validate_profile(payload.get("profile", {})):
            problems.append(f"{path}: profile: {issue}")
        # likewise 'timeline' arrived with RUN_FORMAT 9
        for issue in validate_timeline(payload.get("timeline", {})):
            problems.append(f"{path}: timeline: {issue}")
    if not files:
        problems.append("--digest-schema matched no record files")
    return problems


def check_timeline_schema(paths: List[Path]) -> List[str]:
    """Validate epoch time-series payloads; returns violations.

    Each path is a ``*.json`` file or a directory of them; a file that
    looks like a run record (has ``workload``) contributes its
    ``timeline`` field, anything else is treated as a bare timeline
    document.
    """
    import json

    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.obs.timeline import validate_timeline

    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        else:
            files.append(path)
    problems: List[str] = []
    for path in files:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            problems.append(f"{path}: unreadable: {exc}")
            continue
        except ValueError as exc:
            problems.append(f"{path}: not JSON: {exc}")
            continue
        if not isinstance(payload, dict):
            problems.append(f"{path}: not a JSON object")
            continue
        timeline = (payload.get("timeline", {})
                    if "workload" in payload else payload)
        problems.extend(f"{path}: timeline: {issue}"
                        for issue in validate_timeline(timeline))
    if not files:
        problems.append("--timeline-schema matched no files")
    return problems


def check_tracked_bytecode() -> List[str]:
    """Fail when git tracks compiled-bytecode noise; returns violations.

    ``.gitignore`` keeps new ``__pycache__``/``*.pyc`` litter out of
    ``git add``; this catches files that were force-added (or predate
    the ignore rule).  Outside a git checkout — or without git — the
    check is vacuous.
    """
    import subprocess

    try:
        proc = subprocess.run(["git", "-C", str(REPO_ROOT), "ls-files"],
                              capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.SubprocessError):
        return []
    if proc.returncode != 0:
        return []
    return [f"tracked bytecode: {name} (git rm --cached it)"
            for name in proc.stdout.splitlines()
            if name.endswith(".pyc") or "__pycache__" in name.split("/")]


def check_serve_schema(paths: List[Path]) -> List[str]:
    """Validate captured serving-API response payloads.

    Each path is a JSON file (or a directory of ``*.json``) holding one
    response body from the ``repro serve`` daemon; the kind (health /
    job / record / error) is sniffed from its shape and the payload is
    validated against :mod:`repro.serve.schema` — the machine-checkable
    half of ``docs/SERVING.md``.  CI's serve-smoke job curls the live
    endpoints into files and runs this over them.
    """
    import json

    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.serve.schema import classify_payload, validate_payload

    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        else:
            files.append(path)
    problems: List[str] = []
    for path in files:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            problems.append(f"{path}: unreadable: {exc}")
            continue
        except ValueError as exc:
            problems.append(f"{path}: not JSON: {exc}")
            continue
        kind = classify_payload(payload)
        if kind is None:
            problems.append(f"{path}: unrecognizable payload shape "
                            f"(not health/job/record/error)")
            continue
        for issue in validate_payload(kind, payload):
            problems.append(f"{path}: {issue}")
    if not files:
        problems.append("--serve-schema matched no payload files")
    return problems


def check_metrics_schema(paths: List[Path]) -> List[str]:
    """Self-check the metric registry, then validate any ``/metrics``
    scrapes against it.

    With no paths the mode still checks
    :data:`repro.obs.metrics.METRIC_SCHEMA` for well-formedness (valid
    names and labels, counters ending in ``_total``); each given file is
    additionally parsed as Prometheus text exposition and every sample
    matched against the declarations.  CI's serve-smoke job runs it on
    the ``metrics.txt`` it scrapes from the live daemon.
    """
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.obs.metrics import validate_exposition, validate_schema

    problems = [f"METRIC_SCHEMA: {issue}" for issue in validate_schema()]
    for path in paths:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            problems.append(f"{path}: unreadable: {exc}")
            continue
        if not text.strip():
            problems.append(f"{path}: empty exposition")
            continue
        problems.extend(f"{path}: {issue}"
                        for issue in validate_exposition(text))
    return problems


def check_protocol() -> List[str]:
    """Reconcile the protocol implementations against their specs."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.verify.extract import extract_facts, reconcile
    from repro.verify.spec import SPECS, WAIVERS

    transitions = [t for spec in SPECS.values() for t in spec.transitions]
    return [str(finding)
            for finding in reconcile(transitions, WAIVERS, extract_facts())]


def main(argv: List[str]) -> int:
    if argv and argv[0] == "--protocol":
        if argv[1:]:
            print("lint_repro: --protocol takes no further arguments",
                  file=sys.stderr)
            return 2
        problems = check_protocol()
        for problem in problems:
            print(problem)
        if problems:
            print(f"lint_repro: {len(problems)} problem(s)", file=sys.stderr)
            return 1
        print("lint_repro: protocol spec and implementation agree")
        return 0
    if argv and argv[0] == "--digest-schema":
        record_paths = [Path(arg) for arg in argv[1:]]
        if not record_paths:
            print("lint_repro: --digest-schema needs at least one record "
                  "file or directory (e.g. .repro_cache/runs)",
                  file=sys.stderr)
            return 2
        problems = check_digest_schema(record_paths)
        for problem in problems:
            print(problem)
        if problems:
            print(f"lint_repro: {len(problems)} problem(s)", file=sys.stderr)
            return 1
        print(f"lint_repro: digest schemas valid in "
              f"{len(record_paths)} path(s)")
        return 0
    if argv and argv[0] == "--timeline-schema":
        timeline_paths = [Path(arg) for arg in argv[1:]]
        if not timeline_paths:
            print("lint_repro: --timeline-schema needs at least one record "
                  "file, timeline JSON, or directory "
                  "(e.g. .repro_cache/runs)", file=sys.stderr)
            return 2
        problems = check_timeline_schema(timeline_paths)
        for problem in problems:
            print(problem)
        if problems:
            print(f"lint_repro: {len(problems)} problem(s)", file=sys.stderr)
            return 1
        print(f"lint_repro: timeline schemas valid in "
              f"{len(timeline_paths)} path(s)")
        return 0
    if argv and argv[0] == "--serve-schema":
        payload_paths = [Path(arg) for arg in argv[1:]]
        if not payload_paths:
            print("lint_repro: --serve-schema needs at least one response "
                  "payload file or directory", file=sys.stderr)
            return 2
        problems = check_serve_schema(payload_paths)
        for problem in problems:
            print(problem)
        if problems:
            print(f"lint_repro: {len(problems)} problem(s)", file=sys.stderr)
            return 1
        print(f"lint_repro: serve payloads valid in "
              f"{len(payload_paths)} path(s)")
        return 0
    if argv and argv[0] == "--metrics-schema":
        metric_paths = [Path(arg) for arg in argv[1:]]
        problems = check_metrics_schema(metric_paths)
        for problem in problems:
            print(problem)
        if problems:
            print(f"lint_repro: {len(problems)} problem(s)", file=sys.stderr)
            return 1
        print(f"lint_repro: metric schema valid"
              + (f"; {len(metric_paths)} scrape(s) conform"
                 if metric_paths else ""))
        return 0
    if argv and argv[0] == "--trace-schema":
        trace_paths = [Path(arg) for arg in argv[1:]]
        if not trace_paths:
            print("lint_repro: --trace-schema needs at least one "
                  "trace.jsonl path", file=sys.stderr)
            return 2
        problems = check_trace_schema(trace_paths)
        for problem in problems:
            print(problem)
        if problems:
            print(f"lint_repro: {len(problems)} problem(s)", file=sys.stderr)
            return 1
        print(f"lint_repro: {len(trace_paths)} trace file(s) schema-valid")
        return 0
    paths = [Path(arg) for arg in argv] if argv else DEFAULT_PATHS
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"lint_repro: no such path: {path}", file=sys.stderr)
        return 2
    problems = lint_paths(paths) + check_tracked_bytecode()
    for problem in problems:
        print(problem)
    if problems:
        print(f"lint_repro: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
